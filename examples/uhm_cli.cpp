/**
 * @file
 * uhm_cli — a command-line driver for the whole pipeline.
 *
 * Usage:
 *   uhm_cli [run] [options] <sample-name | path/to/program.ctr>
 *   uhm_cli sweep [options] [program ...]
 *
 * "run" is the (optional) explicit name of the single-program
 * subcommand; omitting it is equivalent.
 *
 * With --tenants=<n> (n >= 1) the run subcommand becomes
 * multi-programmed: n copies of the program are time-sliced over one
 * machine with a shared DTB by the tenant scheduler (src/sched/).
 * --sched picks the policy, --quantum-cycles the slice length,
 * --switch-mode what happens to the shared DTB on a switch, and
 * --partitions divides its set space among tenants. Requires a
 * DTB-dispatching --machine (dtb or tiered).
 *
 * The sweep subcommand runs a batch of programs concurrently on the
 * parallel sweep harness (bench/bench_common.hh) and emits a JSONL
 * report — one "sweep_point" line per program in argument order plus
 * one "sweep_summary" line with the merged counters. The report is
 * byte-identical for any --jobs value. Programs default to the whole
 * sample corpus; the pseudo-program "synthetic" adds the phased-loop
 * grid workload, generated from --seed.
 *
 * Sweep options:
 *   --jobs=<n>             worker threads (default: all cores)
 *   --seed=<n>             seed for the "synthetic" workload (1978)
 *   --machine=/--encoding= as below, applied to every point
 *   --tier-threshold=/--trace-cap=/--trace-bytes= as below
 *   --out=<file>           write the JSONL report to <file> (stdout)
 *
 * Options:
 *   --machine=<conventional|cached|dtb|dtb2|tiered>  (default dtb)
 *   --dispatch=<switch|threaded>  host interpreter loop (default
 *                          switch). "threaded" runs the fast mode:
 *                          direct-threaded dispatch over flattened run
 *                          images with inline caches and batched cycle
 *                          attribution. Simulated cycles and all
 *                          outputs are byte-identical either way; the
 *                          switch loop is the reference path. Accepted
 *                          by sweep too.
 *   --encoding=<expanded|packed|contextual|huffman|pair-huffman|
 *               quantized>                      (default huffman)
 *   --decode=<tree|table>  host-side Huffman decode implementation
 *                          (default table). Simulated cycles and all
 *                          outputs are identical either way; the tree
 *                          walk is the reference path, kept as an
 *                          escape hatch for bisecting fast-path
 *                          regressions. Accepted by sweep too.
 *   --input=<comma-separated ints>              (read-statement input)
 *   --dtb-bytes=<n>        DTB buffer capacity  (default 4096)
 *   --assoc=<n>            DTB/cache ways, 0 = full (default 4)
 *   --tier-threshold=<n>   backedges before a trace records (tiered, 8)
 *   --trace-cap=<n>        max DIR instrs per trace (tiered, 64)
 *   --trace-bytes=<n>      trace-cache capacity (tiered, 8192)
 *   The three tier flags are rejected (exit 1) when --machine is not
 *   tiered — a misspelled machine kind must not silently ignore them.
 *   --tenants=<n>          time-slice n copies of the program (0 = off)
 *   --sched=<rr|prio|feedback>  tenant scheduling policy (default rr)
 *   --quantum-cycles=<n>   nominal slice length in cycles (5000)
 *   --switch-mode=<flush|tag>   shared-DTB handling on a tenant
 *                          switch (default tag)
 *   --partitions=<n>       partition the shared DTB's sets among
 *                          tenants (0/1 = fully shared)
 *   --raise                raise the DIR's semantic level (fuse opcodes)
 *   --disasm               print the DIR disassembly and exit
 *   --emit-asm=<file>      write round-trippable DIR assembly and exit
 *   --emit-bin=<file>      write the binary DIR form and exit
 *   --stats                print the full counter set after the run
 *   --trace                print the INTERP event trace (DTB kinds)
 *   --profile[=<file>]     emit a JSONL profile report (phases,
 *                          counters, histograms, ratios) to <file>, or
 *                          to stderr when no file is given; combined
 *                          with --trace the report also carries typed
 *                          event lines. Format: docs/INTERNALS.md
 *   --timeline=<file>      record the typed event trace and write a
 *                          Chrome-trace-event JSON timeline (loadable
 *                          in Perfetto / chrome://tracing; see
 *                          scripts/trace_report.py) to <file>
 *   --sample-interval=<n>  snapshot DTB / trace-cache occupancy and
 *                          hit-rate deltas every <n> cycles into the
 *                          profile report and timeline (0 = off)
 *
 * The program argument may be a sample name, a Contour source file, a
 * DIR assembly file (.dira) or a DIR binary (.dirb).
 *
 * Exit status: 0 on success, 1 on user error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/emit.hh"
#include "obs/timeline.hh"
#include "sched/scheduler.hh"

#include "bench_common.hh"
#include "dir/asm.hh"
#include "dir/fusion.hh"
#include "dir/serialize.hh"
#include "hlr/compiler.hh"
#include "support/huffman.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

namespace
{

struct Options
{
    std::string program = "qsort";
    uhm::MachineKind kind = uhm::MachineKind::Dtb;
    uhm::DispatchMode dispatch = uhm::DispatchMode::Switch;
    uhm::EncodingScheme scheme = uhm::EncodingScheme::Huffman;
    std::vector<int64_t> input;
    uint64_t dtbBytes = 4096;
    unsigned assoc = 4;
    uint32_t tierThreshold = 8;
    size_t traceCap = 64;
    uint64_t traceBytes = 8192;
    /**
     * First tier-only flag seen on the command line, empty when none:
     * tier flags on a non-tiered machine are an error, not a no-op.
     */
    std::string tierFlagSeen;
    /** Tenant count; 0 = classic single-program run. */
    unsigned tenants = 0;
    uhm::sched::Policy schedPolicy = uhm::sched::Policy::RoundRobin;
    uint64_t quantumCycles = 5000;
    uhm::sched::SwitchMode switchMode =
        uhm::sched::SwitchMode::TagAndShare;
    uint64_t partitions = 0;
    /** First scheduler-only flag seen, empty when none. */
    std::string schedFlagSeen;
    bool raiseLevel = false;
    bool disasm = false;
    bool stats = false;
    bool trace = false;
    bool profile = false;
    /** Profile destination; "-" = stderr. */
    std::string profilePath = "-";
    /** Chrome-trace timeline destination; empty = no timeline. */
    std::string timelinePath;
    /** Occupancy-sampler interval in cycles; 0 = off. */
    uint64_t sampleInterval = 0;
    std::string emitAsm;
    std::string emitBin;
};

uhm::MachineKind
parseMachine(const std::string &name)
{
    if (name == "conventional")
        return uhm::MachineKind::Conventional;
    if (name == "cached")
        return uhm::MachineKind::Cached;
    if (name == "dtb")
        return uhm::MachineKind::Dtb;
    if (name == "dtb2")
        return uhm::MachineKind::Dtb2;
    if (name == "tiered")
        return uhm::MachineKind::Tiered;
    uhm::fatal("unknown machine kind '%s'", name.c_str());
}

uhm::DispatchMode
parseDispatch(const std::string &name)
{
    uhm::DispatchMode mode;
    if (!uhm::parseDispatchMode(name, mode))
        uhm::fatal("unknown dispatch mode '%s' (switch|threaded)",
                   name.c_str());
    return mode;
}

/** Shared help text for the options both subcommands accept. */
constexpr const char *commonOptionsHelp =
    "  --machine=<conventional|cached|dtb|dtb2|tiered>\n"
    "                         machine organization (default dtb)\n"
    "  --dispatch=<switch|threaded>\n"
    "                         host interpreter loop (default switch).\n"
    "                         threaded = direct-threaded dispatch over\n"
    "                         flattened run images with inline caches;\n"
    "                         simulated cycles and all outputs are\n"
    "                         byte-identical either way\n"
    "  --encoding=<expanded|packed|contextual|huffman|pair-huffman|\n"
    "              quantized> DIR encoding (default huffman)\n"
    "  --decode=<tree|table>  host-side Huffman decode (default table)\n"
    "  --tier-threshold=<n>   backedges into a resident DTB entry before\n"
    "                         a trace records (tiered only, default 8)\n"
    "  --trace-cap=<n>        max DIR instrs per trace (tiered, 64)\n"
    "  --trace-bytes=<n>      trace-cache capacity in bytes (tiered,\n"
    "                         default 8192)\n";

void
printMainHelp(std::FILE *out = stdout)
{
    std::fputs(
        "usage: uhm_cli [run] [options] <sample-name | path/to/program>\n"
        "       uhm_cli sweep [options] [program ...]\n"
        "\n"
        "Run one program on the simulated universal host machine\n"
        "(the explicit \"run\" subcommand name is optional).\n"
        "\n",
        out);
    std::fputs(commonOptionsHelp, out);
    std::fputs(
        "  --input=<ints>         comma-separated read-statement input\n"
        "  --dtb-bytes=<n>        DTB buffer capacity (default 4096)\n"
        "  --assoc=<n>            DTB/cache ways, 0 = full (default 4)\n"
        "  --tenants=<n>          time-slice n copies of the program\n"
        "                         over one shared DTB (0 = off)\n"
        "  --sched=<rr|prio|feedback>  tenant policy (default rr)\n"
        "  --quantum-cycles=<n>   nominal slice length (default 5000)\n"
        "  --switch-mode=<flush|tag>   DTB handling on a tenant switch\n"
        "                         (default tag)\n"
        "  --partitions=<n>       partition the shared DTB's sets among\n"
        "                         tenants (0/1 = fully shared)\n"
        "  --raise                fuse opcodes (raise semantic level)\n"
        "  --disasm               print the DIR disassembly and exit\n"
        "  --emit-asm=<file>      write DIR assembly and exit\n"
        "  --emit-bin=<file>      write binary DIR form and exit\n"
        "  --stats                print the full counter set\n"
        "  --trace                print the INTERP event trace\n"
        "  --profile[=<file>]     emit a JSONL profile report\n"
        "  --timeline=<file>      write a Chrome-trace timeline (load\n"
        "                         in Perfetto or chrome://tracing)\n"
        "  --sample-interval=<n>  sample DTB/trace-cache occupancy\n"
        "                         every <n> cycles (0 = off)\n"
        "\n"
        "example: uhm_cli run --machine=tiered --timeline=out.json "
        "loops\n",
        out);
}

void
printSweepHelp(std::FILE *out = stdout)
{
    std::fputs(
        "usage: uhm_cli sweep [options] [program ...]\n"
        "\n"
        "Run a batch of programs concurrently and emit a JSONL report\n"
        "(byte-identical for any --jobs value).\n"
        "\n",
        out);
    std::fputs(commonOptionsHelp, out);
    std::fputs(
        "  --jobs=<n>             worker threads (default: all cores)\n"
        "  --seed=<n>             seed for the \"synthetic\" workload\n"
        "  --sample-interval=<n>  sample DTB/trace-cache occupancy\n"
        "                         every <n> cycles per point (0 = off)\n"
        "  --out=<file>           write the report to <file> (stdout)\n"
        "\n"
        "example: uhm_cli sweep --machine=tiered --jobs=8 "
        "--out=tiered.jsonl\n",
        out);
}

uhm::EncodingScheme
parseEncoding(const std::string &name)
{
    for (uhm::EncodingScheme scheme : uhm::allEncodingSchemes()) {
        if (name == uhm::encodingName(scheme))
            return scheme;
    }
    uhm::fatal("unknown encoding '%s'", name.c_str());
}

/** Apply --decode=<tree|table> to the process-wide decode kind. */
void
applyDecodeKind(const std::string &name)
{
    if (name == "tree")
        uhm::setHuffmanDecodeKind(uhm::HuffmanDecodeKind::Tree);
    else if (name == "table")
        uhm::setHuffmanDecodeKind(uhm::HuffmanDecodeKind::Table);
    else
        uhm::fatal("unknown decode kind '%s' (tree|table)",
                   name.c_str());
}

std::vector<int64_t>
parseInts(const std::string &list)
{
    std::vector<int64_t> values;
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ','))
        values.push_back(std::stoll(item));
    return values;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--machine=", 0) == 0)
            opts.kind = parseMachine(value("--machine="));
        else if (arg.rfind("--dispatch=", 0) == 0)
            opts.dispatch = parseDispatch(value("--dispatch="));
        else if (arg.rfind("--encoding=", 0) == 0)
            opts.scheme = parseEncoding(value("--encoding="));
        else if (arg.rfind("--decode=", 0) == 0)
            applyDecodeKind(value("--decode="));
        else if (arg.rfind("--input=", 0) == 0)
            opts.input = parseInts(value("--input="));
        else if (arg.rfind("--dtb-bytes=", 0) == 0)
            opts.dtbBytes = std::stoull(value("--dtb-bytes="));
        else if (arg.rfind("--assoc=", 0) == 0)
            opts.assoc = static_cast<unsigned>(
                std::stoul(value("--assoc=")));
        else if (arg.rfind("--tier-threshold=", 0) == 0) {
            opts.tierThreshold = static_cast<uint32_t>(
                std::stoul(value("--tier-threshold=")));
            opts.tierFlagSeen = "--tier-threshold";
        }
        else if (arg.rfind("--trace-cap=", 0) == 0) {
            opts.traceCap = std::stoull(value("--trace-cap="));
            opts.tierFlagSeen = "--trace-cap";
        }
        else if (arg.rfind("--trace-bytes=", 0) == 0) {
            opts.traceBytes = std::stoull(value("--trace-bytes="));
            opts.tierFlagSeen = "--trace-bytes";
        }
        else if (arg.rfind("--tenants=", 0) == 0)
            opts.tenants = static_cast<unsigned>(
                std::stoul(value("--tenants=")));
        else if (arg.rfind("--sched=", 0) == 0) {
            if (!uhm::sched::parsePolicy(value("--sched="),
                                         opts.schedPolicy))
                uhm::fatal("unknown scheduling policy '%s' "
                           "(rr|prio|feedback)",
                           value("--sched=").c_str());
            opts.schedFlagSeen = "--sched";
        }
        else if (arg.rfind("--quantum-cycles=", 0) == 0) {
            opts.quantumCycles =
                std::stoull(value("--quantum-cycles="));
            opts.schedFlagSeen = "--quantum-cycles";
        }
        else if (arg.rfind("--switch-mode=", 0) == 0) {
            if (!uhm::sched::parseSwitchMode(value("--switch-mode="),
                                             opts.switchMode))
                uhm::fatal("unknown switch mode '%s' (flush|tag)",
                           value("--switch-mode=").c_str());
            opts.schedFlagSeen = "--switch-mode";
        }
        else if (arg.rfind("--partitions=", 0) == 0) {
            opts.partitions = std::stoull(value("--partitions="));
            opts.schedFlagSeen = "--partitions";
        }
        else if (arg == "--help" || arg == "-h") {
            printMainHelp();
            std::exit(0);
        }
        else if (arg == "--raise")
            opts.raiseLevel = true;
        else if (arg == "--disasm")
            opts.disasm = true;
        else if (arg.rfind("--emit-asm=", 0) == 0)
            opts.emitAsm = value("--emit-asm=");
        else if (arg.rfind("--emit-bin=", 0) == 0)
            opts.emitBin = value("--emit-bin=");
        else if (arg == "--stats")
            opts.stats = true;
        else if (arg == "--trace")
            opts.trace = true;
        else if (arg == "--profile")
            opts.profile = true;
        else if (arg.rfind("--profile=", 0) == 0) {
            opts.profile = true;
            opts.profilePath = value("--profile=");
        }
        else if (arg.rfind("--timeline=", 0) == 0)
            opts.timelinePath = value("--timeline=");
        else if (arg.rfind("--sample-interval=", 0) == 0)
            opts.sampleInterval =
                std::stoull(value("--sample-interval="));
        else if (!arg.empty() && arg[0] == '-') {
            // Usage goes to stderr here: stdout must stay clean (and
            // empty) on a failed invocation so pipelines never mistake
            // help text for run output.
            printMainHelp(stderr);
            uhm::fatal("unknown option '%s'", arg.c_str());
        }
        else
            opts.program = arg;
    }
    return opts;
}

/** True if @p name ends with @p suffix. */
bool
endsWith(const std::string &name, const std::string &suffix)
{
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Resolve the program argument to a DirProgram, whatever its form. */
uhm::DirProgram
loadProgram(const std::string &arg, std::vector<int64_t> &default_input)
{
    if (endsWith(arg, ".dirb"))
        return uhm::loadDirProgram(arg);

    std::ifstream file(arg);
    if (file) {
        std::ostringstream os;
        os << file.rdbuf();
        if (endsWith(arg, ".dira"))
            return uhm::parseDirAssembly(os.str());
        return uhm::hlr::compileSource(os.str());
    }
    const auto &sample = uhm::workload::sampleByName(arg);
    default_input = sample.input;
    return uhm::hlr::compileSource(sample.source);
}

/**
 * The sweep subcommand: run a batch of programs concurrently and emit
 * the merged JSONL report. argv[1] is "sweep"; options follow.
 */
int
runSweepCommand(int argc, char **argv)
{
    unsigned jobs = 0;
    uint64_t seed = 1978;
    uint64_t sample_interval = 0;
    uhm::MachineKind kind = uhm::MachineKind::Dtb;
    uhm::DispatchMode dispatch = uhm::DispatchMode::Switch;
    uhm::EncodingScheme scheme = uhm::EncodingScheme::Huffman;
    uhm::tier::TierConfig tier_cfg;
    uhm::tier::TraceCacheConfig trace_cache_cfg;
    std::string tier_flag_seen;
    std::string out_path;
    std::vector<std::string> programs;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--jobs=", 0) == 0)
            jobs = static_cast<unsigned>(std::stoul(value("--jobs=")));
        else if (arg.rfind("--seed=", 0) == 0)
            seed = std::stoull(value("--seed="));
        else if (arg.rfind("--machine=", 0) == 0)
            kind = parseMachine(value("--machine="));
        else if (arg.rfind("--dispatch=", 0) == 0)
            dispatch = parseDispatch(value("--dispatch="));
        else if (arg.rfind("--encoding=", 0) == 0)
            scheme = parseEncoding(value("--encoding="));
        else if (arg.rfind("--decode=", 0) == 0)
            applyDecodeKind(value("--decode="));
        else if (arg.rfind("--tier-threshold=", 0) == 0) {
            tier_cfg.hotThreshold = static_cast<uint32_t>(
                std::stoul(value("--tier-threshold=")));
            tier_flag_seen = "--tier-threshold";
        }
        else if (arg.rfind("--trace-cap=", 0) == 0) {
            tier_cfg.traceCap = std::stoull(value("--trace-cap="));
            tier_flag_seen = "--trace-cap";
        }
        else if (arg.rfind("--trace-bytes=", 0) == 0) {
            trace_cache_cfg.capacityBytes =
                std::stoull(value("--trace-bytes="));
            tier_flag_seen = "--trace-bytes";
        }
        else if (arg == "--help" || arg == "-h") {
            printSweepHelp();
            return 0;
        }
        else if (arg.rfind("--sample-interval=", 0) == 0)
            sample_interval =
                std::stoull(value("--sample-interval="));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = value("--out=");
        else if (!arg.empty() && arg[0] == '-') {
            printSweepHelp(stderr);
            uhm::fatal("unknown sweep option '%s'", arg.c_str());
        }
        else
            programs.push_back(arg);
    }
    if (!tier_flag_seen.empty() && kind != uhm::MachineKind::Tiered)
        uhm::fatal("%s only applies to --machine=tiered (got '%s')",
                   tier_flag_seen.c_str(), uhm::machineKindName(kind));
    if (programs.empty()) {
        for (const auto &sample : uhm::workload::samplePrograms())
            programs.push_back(sample.name);
    }

    std::vector<uhm::bench::SweepPoint> points;
    for (const std::string &name : programs) {
        uhm::bench::SweepPoint point;
        point.label = name;
        if (name == "synthetic") {
            point.program = uhm::bench::gridWorkload(2, seed);
        } else {
            point.program = loadProgram(name, point.input);
        }
        point.scheme = scheme;
        point.config.kind = kind;
        point.config.dispatch = dispatch;
        point.config.tier = tier_cfg;
        point.config.traceCache = trace_cache_cfg;
        point.config.sampleIntervalCycles = sample_interval;
        points.push_back(std::move(point));
    }

    uhm::bench::SweepRunner runner(jobs);
    uhm::bench::SweepReport report =
        uhm::bench::runSweep(runner, points);

    uhm::obs::writeTextTo(report.jsonl,
                          out_path.empty() ? "-" : out_path, stdout);
    std::fprintf(stderr, "# sweep: %zu points on %u workers, %llu DIR "
                 "instrs simulated\n",
                 points.size(), runner.jobs(),
                 static_cast<unsigned long long>(
                     report.counters.get("machine.dir_instrs")));
    return 0;
}

/**
 * The multi-tenant path: n copies of the program time-sliced over one
 * shared-DTB machine by the tenant scheduler. @p cfg is the per-tenant
 * machine template the classic path would have used.
 */
int
runMultiTenant(const Options &opts, const uhm::DirProgram &prog,
               uhm::MachineConfig cfg)
{
    namespace sched = uhm::sched;
    if (opts.kind != uhm::MachineKind::Dtb &&
        opts.kind != uhm::MachineKind::Tiered)
        uhm::fatal("--tenants requires --machine=dtb or tiered "
                   "(got '%s')", uhm::machineKindName(opts.kind));
    if (opts.profile)
        uhm::fatal("--profile is per-machine; with --tenants use "
                   "--timeline and --stats");
    if (opts.trace)
        uhm::fatal("--trace is per-machine and not supported with "
                   "--tenants");
    if (opts.sampleInterval > 0)
        uhm::fatal("--sample-interval is per-machine and not supported "
                   "with --tenants");

    cfg.dtb.numPartitions = opts.partitions;
    cfg.traceEvents = false;
    cfg.profileEvents = false;

    sched::SchedConfig sc;
    sc.policy = opts.schedPolicy;
    sc.switchMode = opts.switchMode;
    sc.quantumCycles = opts.quantumCycles;
    sc.scheme = opts.scheme;
    sc.machine = cfg;
    sc.profileEvents = !opts.timelinePath.empty();
    if (sc.profileEvents)
        sc.profileEventCapacity =
            std::max<size_t>(sc.profileEventCapacity, size_t{1} << 20);

    std::vector<sched::TenantSpec> tenants;
    tenants.reserve(opts.tenants);
    for (unsigned i = 0; i < opts.tenants; ++i) {
        sched::TenantSpec spec;
        spec.name = opts.program + "#" + std::to_string(i);
        spec.program = prog;
        spec.input = opts.input;
        // Deterministic priority mix (1,2,3,1,...) so --sched=prio has
        // something to act on even with identical programs.
        spec.priority = 1 + i % 3;
        tenants.push_back(std::move(spec));
    }

    sched::SchedResult sr = sched::runScheduled(sc, std::move(tenants));

    for (const sched::TenantResult &t : sr.tenants) {
        std::printf("tenant %u:", t.asid);
        for (int64_t v : t.run.output)
            std::printf(" %lld", static_cast<long long>(v));
        std::printf("\n");
    }
    std::fprintf(stderr,
                 "# %s / %s: %zu tenants, policy %s, %s switches, "
                 "quantum %llu; %llu cycles total, %llu switches, "
                 "%llu flushes\n",
                 uhm::machineKindName(opts.kind),
                 uhm::encodingName(opts.scheme), sr.tenants.size(),
                 sched::policyName(sc.policy),
                 sched::switchModeName(sc.switchMode),
                 static_cast<unsigned long long>(sc.quantumCycles),
                 static_cast<unsigned long long>(sr.totalCycles),
                 static_cast<unsigned long long>(sr.switches),
                 static_cast<unsigned long long>(sr.flushes));
    for (const sched::TenantResult &t : sr.tenants) {
        std::fprintf(stderr,
                     "# tenant %u (%s): %llu instrs, %llu cycles in "
                     "%llu slices, dtb miss %.4f, cpi p50 %.3f p99 "
                     "%.3f, finished @%llu\n",
                     t.asid, t.name.c_str(),
                     static_cast<unsigned long long>(t.run.dirInstrs),
                     static_cast<unsigned long long>(t.run.cycles),
                     static_cast<unsigned long long>(t.slices),
                     t.missRate(),
                     static_cast<double>(t.cpiP50()) / 1000.0,
                     static_cast<double>(t.cpiP99()) / 1000.0,
                     static_cast<unsigned long long>(
                         t.finishedAtCycle));
    }
    if (opts.stats) {
        for (const auto &kv : sr.counters)
            std::fprintf(stderr, "# %s = %llu\n", kv.first.c_str(),
                         static_cast<unsigned long long>(kv.second));
    }
    if (!opts.timelinePath.empty()) {
        uhm::obs::ProfileData p;
        p.meta.emplace_back("program", opts.program);
        p.meta.emplace_back("machine",
                            uhm::machineKindName(opts.kind));
        p.meta.emplace_back("encoding",
                            uhm::encodingName(opts.scheme));
        p.meta.emplace_back("tenants",
                            std::to_string(sr.tenants.size()));
        p.meta.emplace_back("policy", sched::policyName(sc.policy));
        p.meta.emplace_back("switch_mode",
                            sched::switchModeName(sc.switchMode));
        const uhm::CycleBreakdown &b = sr.breakdown;
        p.phases = {
            {"fetch", b.fetch},         {"decode", b.decode},
            {"stage", b.stage},         {"dispatch", b.dispatch},
            {"semantic", b.semantic},   {"translate", b.translate},
            {"translate2", b.translate2},
            {"total", b.total()},
        };
        p.counters = sr.counters;
        p.histograms = sr.histograms;
        p.events = sr.events;
        p.eventsSeen = sr.eventsSeen;
        p.eventsDropped = sr.eventsDropped;
        uhm::obs::emitChromeTrace(p, opts.timelinePath);
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return runSweepCommand(argc, argv);
    // "run" is the explicit name of the default subcommand: shift it
    // off and parse the rest as usual.
    if (argc > 1 && std::strcmp(argv[1], "run") == 0) {
        --argc;
        ++argv;
    }
    Options opts = parseArgs(argc, argv);
    std::vector<int64_t> default_input;
    uhm::DirProgram prog = loadProgram(opts.program, default_input);
    if (opts.input.empty())
        opts.input = default_input;
    if (opts.raiseLevel) {
        uhm::FusionStats stats;
        prog = uhm::raiseSemanticLevel(prog, &stats);
        std::fprintf(stderr, "# raised semantic level: %llu fusions, "
                     "%zu -> %zu instructions\n",
                     static_cast<unsigned long long>(stats.totalFused()),
                     stats.instrsBefore, stats.instrsAfter);
    }

    if (opts.disasm) {
        std::fputs(prog.disassemble().c_str(), stdout);
        return 0;
    }
    if (!opts.emitAsm.empty()) {
        std::ofstream out(opts.emitAsm);
        if (!out)
            uhm::fatal("cannot open '%s'", opts.emitAsm.c_str());
        out << uhm::toDirAssembly(prog);
        return 0;
    }
    if (!opts.emitBin.empty()) {
        uhm::saveDirProgram(prog, opts.emitBin);
        return 0;
    }

    if (!opts.tierFlagSeen.empty() &&
        opts.kind != uhm::MachineKind::Tiered)
        uhm::fatal("%s only applies to --machine=tiered (got '%s')",
                   opts.tierFlagSeen.c_str(),
                   uhm::machineKindName(opts.kind));
    if (!opts.schedFlagSeen.empty() && opts.tenants == 0)
        uhm::fatal("%s requires --tenants", opts.schedFlagSeen.c_str());

    auto image = uhm::encodeDir(prog, opts.scheme);
    uhm::MachineConfig cfg;
    cfg.kind = opts.kind;
    cfg.dispatch = opts.dispatch;
    cfg.dtb.capacityBytes = opts.dtbBytes;
    cfg.dtb.assoc = opts.assoc;
    cfg.icache.capacityBytes = opts.dtbBytes;
    cfg.icache.assoc = opts.assoc;
    cfg.tier.hotThreshold = opts.tierThreshold;
    cfg.tier.traceCap = opts.traceCap;
    cfg.traceCache.capacityBytes = opts.traceBytes;
    cfg.traceEvents = opts.trace;
    // The bounded typed-event ring rides along only when the user also
    // asked for tracing; the counter/phase report alone stays small.
    // A timeline is built *from* the ring, so --timeline enables it
    // too — with a much deeper ring, since a truncated timeline is a
    // lot less useful than a truncated event list.
    cfg.profileEvents =
        (opts.profile && opts.trace) || !opts.timelinePath.empty();
    if (!opts.timelinePath.empty())
        cfg.profileEventCapacity =
            std::max<size_t>(cfg.profileEventCapacity, size_t{1} << 20);
    cfg.sampleIntervalCycles = opts.sampleInterval;

    if (opts.tenants > 0)
        return runMultiTenant(opts, prog, cfg);

    uhm::Machine machine(*image, cfg);
    uhm::RunResult r = machine.run(opts.input);

    for (int64_t v : r.output)
        std::printf("%lld\n", static_cast<long long>(v));

    std::fprintf(stderr,
                 "# %s / %s: %llu DIR instrs, %llu cycles "
                 "(%.2f cycles/instr), image %llu bits\n",
                 uhm::machineKindName(opts.kind),
                 uhm::encodingName(opts.scheme),
                 static_cast<unsigned long long>(r.dirInstrs),
                 static_cast<unsigned long long>(r.cycles),
                 r.avgInterpTime(),
                 static_cast<unsigned long long>(image->bitSize()));
    if (opts.kind == uhm::MachineKind::Dtb ||
        opts.kind == uhm::MachineKind::Dtb2 ||
        opts.kind == uhm::MachineKind::Tiered) {
        std::fprintf(stderr, "# dtb hit ratio %.4f", r.dtbHitRatio);
        if (opts.kind == uhm::MachineKind::Dtb2)
            std::fprintf(stderr, ", L1 hit ratio %.4f", r.dtbL1HitRatio);
        if (opts.kind == uhm::MachineKind::Tiered)
            std::fprintf(stderr,
                         ", trace coverage %.4f, trace hit ratio %.4f",
                         r.traceCoverage, r.traceHitRatio);
        std::fprintf(stderr, "\n");
    }
    if (opts.stats) {
        std::fprintf(stderr, "# breakdown: fetch=%llu decode=%llu "
                     "stage=%llu dispatch=%llu semantic=%llu "
                     "translate=%llu translate2=%llu\n",
                     static_cast<unsigned long long>(r.breakdown.fetch),
                     static_cast<unsigned long long>(r.breakdown.decode),
                     static_cast<unsigned long long>(r.breakdown.stage),
                     static_cast<unsigned long long>(
                         r.breakdown.dispatch),
                     static_cast<unsigned long long>(
                         r.breakdown.semantic),
                     static_cast<unsigned long long>(
                         r.breakdown.translate),
                     static_cast<unsigned long long>(
                         r.breakdown.translate2));
        std::fputs(r.stats.toString().c_str(), stderr);
    }
    if (r.eventsDropped > 0) {
        std::fprintf(stderr,
                     "# warning: event ring overflowed — dropped %llu "
                     "of %llu events (raise the ring capacity); the "
                     "trace and timeline cover only the run's tail\n",
                     static_cast<unsigned long long>(r.eventsDropped),
                     static_cast<unsigned long long>(r.eventsSeen));
    }
    uhm::ProfileMeta meta;
    meta.program = opts.program;
    meta.machine = uhm::machineKindName(opts.kind);
    meta.encoding = uhm::encodingName(opts.scheme);
    meta.imageBits = image->bitSize();
    if (opts.profile || !opts.timelinePath.empty()) {
        uhm::obs::ProfileData profile = uhm::buildProfile(meta, r);
        if (opts.profile)
            uhm::obs::emitProfileJsonl(profile, opts.profilePath);
        if (!opts.timelinePath.empty())
            uhm::obs::emitChromeTrace(profile, opts.timelinePath);
    }
    if (opts.trace) {
        size_t shown = 0;
        for (const std::string &event : r.trace) {
            std::fprintf(stderr, "# %s\n", event.c_str());
            if (++shown >= 200) {
                std::fprintf(stderr, "# ... (%zu more events)\n",
                             r.trace.size() - shown);
                break;
            }
        }
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
