/**
 * @file
 * Dynamic translation demo: the paper's core claim, live.
 *
 * Usage:
 *   dynamic_translation_demo [sample-name]
 *
 * Runs one workload on the three machine organizations across all five
 * encodings, printing the space/time frontier: the heavily encoded DIR
 * is the most compact static form but the slowest to interpret
 * conventionally; the DTB recovers (nearly all of) the speed while
 * keeping the compact static form — "the conflicting requirements of a
 * compact representation and low execution time will be met
 * simultaneously" (section 4).
 */

#include <cstdio>
#include <string>

#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"

int
main(int argc, char **argv)
try {
    std::string name = argc > 1 ? argv[1] : "qsort";
    const auto &sample = uhm::workload::sampleByName(name);
    uhm::DirProgram prog = uhm::hlr::compileSource(sample.source);
    std::printf("workload '%s': %zu DIR instructions\n\n", name.c_str(),
                prog.size());

    uhm::TextTable table(
        "space (static image bits) x time (cycles per DIR instruction)");
    table.setHeader({"encoding", "image bits", "conventional", "cached",
                     "dtb", "dtb speedup", "h_D"});

    for (uhm::EncodingScheme scheme : uhm::allEncodingSchemes()) {
        auto image = uhm::encodeDir(prog, scheme);
        double t[3] = {};
        double hd = 1.0;
        uhm::MachineKind kinds[3] = {uhm::MachineKind::Conventional,
                                     uhm::MachineKind::Cached,
                                     uhm::MachineKind::Dtb};
        std::vector<int64_t> output;
        for (int k = 0; k < 3; ++k) {
            uhm::MachineConfig cfg;
            cfg.kind = kinds[k];
            uhm::Machine machine(*image, cfg);
            uhm::RunResult r = machine.run(sample.input);
            t[k] = r.avgInterpTime();
            if (kinds[k] == uhm::MachineKind::Dtb)
                hd = r.dtbHitRatio;
            if (output.empty())
                output = r.output;
            else if (output != r.output)
                uhm::fatal("organizations disagree on output!");
        }
        table.addRow({uhm::encodingName(scheme),
                      uhm::TextTable::num(image->bitSize()),
                      uhm::TextTable::num(t[0], 2),
                      uhm::TextTable::num(t[1], 2),
                      uhm::TextTable::num(t[2], 2),
                      uhm::TextTable::num(t[0] / t[2], 2) + "x",
                      uhm::TextTable::num(hd, 3)});
    }
    table.print();

    std::printf(
        "\nReading the table: moving down the rows the *static* program "
        "shrinks several\nfold, and conventional interpretation pays for "
        "it in decode time; the DTB row\nstays nearly flat because the "
        "working set runs from the translated PSDER, so\nthe compact "
        "encoding costs almost nothing at run time. That is dynamic\n"
        "translation's bargain.\n");
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
