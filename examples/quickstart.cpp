/**
 * @file
 * Quickstart: compile a Contour program, encode it, and run it on the
 * three universal-host-machine organizations of the paper.
 *
 * Demonstrates the end-to-end pipeline:
 *   HLR source -> DIR (compiler) -> encoded image -> execution on
 *   {conventional, cached, DTB} machines, with cycle breakdowns.
 */

#include <cstdio>

#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "uhm/machine.hh"

int
main()
try {
    // A small Contour program: iterative factorial plus a loop.
    const char *source = R"(
program quickstart;
var i, f;
func fact(n);
var r;
begin
  r := 1;
  while n > 1 do r := r * n; n := n - 1; od;
  return r;
end;
begin
  i := 1;
  while i <= 10 do
    f := fact(i);
    write f;
    i := i + 1;
  od;
end.
)";

    // 1. Compile the HLR to the DIR intermediate level.
    uhm::DirProgram program = uhm::hlr::compileSource(source);
    std::printf("compiled '%s': %zu DIR instructions, %u globals\n\n",
                program.name.c_str(), program.size(), program.numGlobals);

    // 2. Encode the DIR (the static representation kept in level-2
    //    memory) — here with the heavily encoded Huffman scheme.
    auto image = uhm::encodeDir(program, uhm::EncodingScheme::Huffman);
    std::printf("huffman image: %llu bits (%.1f bits/instr)\n\n",
                static_cast<unsigned long long>(image->bitSize()),
                image->meanInstrBits());

    // 3. Run on each machine organization.
    uhm::TextTable table("factorials 1..10 on three machine kinds");
    table.setHeader({"machine", "cycles", "cycles/instr", "hit ratio",
                     "output ok"});
    std::vector<int64_t> expected = {1, 2, 6, 24, 120, 720, 5040,
                                     40320, 362880, 3628800};
    for (uhm::MachineKind kind : {uhm::MachineKind::Conventional,
                                  uhm::MachineKind::Cached,
                                  uhm::MachineKind::Dtb}) {
        uhm::MachineConfig config;
        config.kind = kind;
        uhm::Machine machine(*image, config);
        uhm::RunResult result = machine.run();
        double hit = kind == uhm::MachineKind::Dtb ? result.dtbHitRatio :
            kind == uhm::MachineKind::Cached ? result.cacheHitRatio : 1.0;
        table.addRow({uhm::machineKindName(kind),
                      uhm::TextTable::num(result.cycles),
                      uhm::TextTable::num(result.avgInterpTime(), 2),
                      uhm::TextTable::num(hit, 3),
                      result.output == expected ? "yes" : "NO"});
    }
    table.print();
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
