/**
 * @file
 * Compiler explorer: walk one Contour program through every level of
 * representation the paper defines.
 *
 * Usage:
 *   compiler_explorer [sample-name | path/to/file.ctr]
 *
 * Prints the HLR source, the DIR disassembly (the static intermediate
 * level), the size and decode cost of each encoding, and the PSDER
 * translations the dynamic translator would store in the DTB — the full
 * HLR -> DIR -> PSDER pipeline of sections 2-4, inspectable.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/translator.hh"
#include "hlr/compiler.hh"
#include "hlr/parser.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "workload/samples.hh"

namespace
{

std::string
loadSource(const std::string &arg)
{
    // A path wins if the file exists; otherwise treat it as a sample
    // name.
    std::ifstream file(arg);
    if (file) {
        std::ostringstream os;
        os << file.rdbuf();
        return os.str();
    }
    return uhm::workload::sampleByName(arg).source;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string source = loadSource(argc > 1 ? argv[1] : "nest");

    std::printf("---- HLR (the Contour source) "
                "--------------------------------\n%s\n",
                source.c_str());

    // Parse and compile: the binding step.
    uhm::DirProgram prog = uhm::hlr::compileSource(source);
    std::printf("---- DIR (the static intermediate representation) "
                "------------\n%s\n",
                prog.disassemble().c_str());

    std::printf("contours (the scope table driving display addressing "
                "and the contextual\nencoder):\n");
    for (size_t c = 0; c < prog.contours.size(); ++c) {
        const uhm::Contour &ctr = prog.contours[c];
        std::printf("  [%zu] %-10s depth=%u locals=%u params=%u "
                    "entry=%zu\n",
                    c, ctr.name.c_str(), ctr.depth, ctr.nlocals,
                    ctr.nparams, ctr.entry);
    }

    std::printf("\n---- Encodings (the degree-of-encoding axis) "
                "-----------------\n");
    uhm::TextTable table;
    table.setHeader({"scheme", "bits", "bits/instr", "metadata bits"});
    for (uhm::EncodingScheme scheme : uhm::allEncodingSchemes()) {
        auto image = uhm::encodeDir(prog, scheme);
        table.addRow({uhm::encodingName(scheme),
                      uhm::TextTable::num(image->bitSize()),
                      uhm::TextTable::num(image->meanInstrBits(), 1),
                      uhm::TextTable::num(image->metadataBits())});
    }
    table.print();

    std::printf("\n---- PSDER (what the dynamic translator stores in the "
                "DTB) ---\n");
    auto image = uhm::encodeDir(prog, uhm::EncodingScheme::Huffman);
    uhm::DynamicTranslator translator(*image);
    size_t shown = std::min<size_t>(prog.size(), 12);
    for (size_t i = 0; i < shown; ++i) {
        uhm::Translation tr = translator.translate(image->bitAddrOf(i));
        std::printf("%4zu: %-16s (%llu bits at dir@%llu)\n", i,
                    prog.instrs[i].toString().c_str(),
                    static_cast<unsigned long long>(tr.bits),
                    static_cast<unsigned long long>(image->bitAddrOf(i)));
        for (const uhm::ShortInstr &si : tr.code)
            std::printf("          %s\n", si.toString().c_str());
    }
    if (shown < prog.size())
        std::printf("... (%zu more instructions)\n", prog.size() - shown);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
