#!/usr/bin/env python3
"""Lint a Prometheus text-exposition payload from uhm_serve.

Reads the payload from a file (or stdin when no path is given) and
checks the subset of the exposition format the daemon emits:

  - ``# HELP <name> <text>`` and ``# TYPE <name> counter|gauge|summary``
    comment syntax,
  - metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``,
  - label blocks are well-formed ``{key="value",...}`` with quoted
    values,
  - every sample line's base name (with any ``_sum``/``_count``
    summary suffix stripped) was announced by a preceding TYPE line,
  - every sample value parses as a float (``NaN``/``Inf`` allowed).

Usage: check_metrics_format.py [METRICS.txt]
Exit status: 0 on a clean payload, 1 on any violation, 2 on I/O error.
"""

import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$")
LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                   r'"(?P<value>(?:[^"\\]|\\.)*)"$')


def base_name(name):
    """A sample's family name: strip the summary/counter suffixes."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(text):
    """Return a list of violation messages (empty = clean)."""
    errors = []
    typed = {}
    helped = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        where = "line %d" % lineno
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append("%s: malformed comment: %r" % (where, line))
                continue
            name = parts[2]
            if not METRIC_NAME.match(name):
                errors.append("%s: bad metric name %r" % (where, name))
            if parts[1] == "HELP":
                if len(parts) < 4 or not parts[3].strip():
                    errors.append("%s: HELP without text" % where)
                helped.add(name)
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in TYPES:
                    errors.append("%s: unknown TYPE %r" % (where, kind))
                if name in typed:
                    errors.append("%s: duplicate TYPE for %r"
                                  % (where, name))
                typed[name] = kind
            continue
        m = SAMPLE.match(line)
        if not m:
            errors.append("%s: malformed sample: %r" % (where, line))
            continue
        samples += 1
        family = base_name(m.group("name"))
        if family not in typed and m.group("name") not in typed:
            errors.append("%s: sample %r has no preceding TYPE"
                          % (where, m.group("name")))
        labels = m.group("labels")
        if labels is not None:
            for item in filter(None, labels.split(",")):
                lm = LABEL.match(item.strip())
                if not lm:
                    errors.append("%s: malformed label %r"
                                  % (where, item))
        value = m.group("value")
        try:
            float(value)
        except ValueError:
            if value not in ("NaN", "+Inf", "-Inf", "Inf"):
                errors.append("%s: bad sample value %r" % (where, value))
    if samples == 0:
        errors.append("no samples found")
    for name in typed:
        if name not in helped:
            errors.append("metric %r has TYPE but no HELP" % name)
    return errors


def main(argv):
    if len(argv) > 2 or (len(argv) == 2 and argv[1].startswith("-")):
        print("usage: check_metrics_format.py [METRICS.txt]",
              file=sys.stderr)
        return 2
    try:
        if len(argv) == 2:
            with open(argv[1]) as f:
                text = f.read()
        else:
            text = sys.stdin.read()
    except OSError as e:
        print("error: %s" % e, file=sys.stderr)
        return 2

    errors = lint(text)
    for e in errors[:20]:
        print("error: " + e, file=sys.stderr)
    if len(errors) > 20:
        print("error: ... and %d more" % (len(errors) - 20),
              file=sys.stderr)
    if errors:
        return 1
    families = len(
        [l for l in text.splitlines() if l.startswith("# TYPE ")])
    n_samples = len(
        [l for l in text.splitlines()
         if l.strip() and not l.startswith("#")])
    print("ok: %d metric families, %d samples" % (families, n_samples))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
