#!/usr/bin/env python3
"""Validate and summarize a uhm_cli --timeline Chrome-trace file.

The timeline is the Chrome trace-event "JSON Array Format": one object
with a ``traceEvents`` array of metadata ("ph":"M"), complete-span
("ph":"X"), counter ("ph":"C") and async begin/end ("ph":"b"/"e")
events, loadable in Perfetto or chrome://tracing. The async events are
uhm_serve's per-request span trees: one ``request`` root per request id
with ``wait``/``acquire``/``slice``/``reply`` children, all carrying
``cat`` "serve.request" and ``id`` = the request id. uhm_cli writes it from the machine's typed event ring
(src/obs/timeline.hh documents the span-reconstruction semantics).

Default output is a human summary: per-track span counts and cycle
totals, the top-N hottest DIR addresses (the addresses whose dtb_hit /
dtb_miss spans carry the most cycles) and a set-conflict proxy (the
most-evicted DIR addresses). With ``--check`` the script only validates
the schema and exits non-zero on any violation — the CI gate.

Usage: trace_report.py TIMELINE.json [--check] [--top=10]
Exit status: 0 on a valid timeline, 1 on schema violations, 2 on
malformed input.
"""

import collections
import json
import sys

# Every span name the exporter can emit: the cycle buckets (overview
# track) plus obs::eventKindName() of each EventKind. A name outside
# this set means the exporter and this checker have drifted apart.
BUCKET_NAMES = {
    "fetch", "decode", "stage", "dispatch", "semantic", "translate",
    "translate2",
}
EVENT_NAMES = {
    "fetch", "decode", "dtb_hit", "dtb_miss", "dtb_evict", "dtb_reject",
    "trap", "translate", "promote", "trace_record", "trace_abort",
    "translate2", "trace_enter", "trace_exit", "trace_evict",
    "trace_invalidate", "sample", "dtb_flush", "sched_slice",
    "sched_switch", "serve_enqueue", "serve_begin", "serve_done",
    "serve_reject", "serve_acquire", "serve_slice",
}
# Async (ph "b"/"e") names: uhm_serve's per-request span tree.
ASYNC_NAMES = {"request", "wait", "acquire", "slice", "reply"}
ASYNC_CAT = "serve.request"
TRACK_NAMES = {
    "cycle buckets", "ifu", "iu1", "iu2", "translator", "tier",
    "sampler", "sched", "serve",
}
PHASES = {"M", "X", "C", "b", "e"}


def fail(errors):
    for e in errors[:20]:
        print("error: " + e, file=sys.stderr)
    if len(errors) > 20:
        print("error: ... and %d more" % (len(errors) - 20),
              file=sys.stderr)
    return 1


def validate(doc):
    """Return a list of schema-violation messages (empty = valid).

    Unknown *track* names are downgraded to stderr warnings: a new
    producer adding a track should not break old checkers, whereas an
    unknown span name still means real exporter/checker drift.
    """
    errors = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"]

    thread_names = {}
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            errors.append(where + ": not an object")
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                errors.append("%s: missing '%s'" % (where, field))
        ph = ev.get("ph")
        if ph not in PHASES:
            errors.append("%s: unknown ph %r" % (where, ph))
            continue
        if ph == "M":
            if ev.get("name") == "thread_name":
                name = ev.get("args", {}).get("name")
                if name not in TRACK_NAMES:
                    print("warning: %s: unknown track %r" % (where, name),
                          file=sys.stderr)
                thread_names[ev.get("tid")] = name
        elif ph == "X":
            if "dur" not in ev:
                errors.append(where + ": X event missing 'dur'")
            name = ev.get("name")
            ok = name in EVENT_NAMES or \
                (ev.get("tid") == 0 and name in BUCKET_NAMES)
            if not ok:
                errors.append("%s: unknown span name %r" % (where, name))
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, int) or ts < 0:
                errors.append(where + ": ts must be a non-negative int")
            if dur is not None and (not isinstance(dur, int) or dur < 0):
                errors.append(where + ": dur must be a non-negative int")
        elif ph == "C":
            if "value" not in ev.get("args", {}):
                errors.append(where + ": C event missing args.value")
        elif ph in ("b", "e"):
            if ev.get("cat") != ASYNC_CAT:
                errors.append("%s: async event cat must be %r (got %r)"
                              % (where, ASYNC_CAT, ev.get("cat")))
            if "id" not in ev:
                errors.append(where + ": async event missing 'id'")
            if ev.get("name") not in ASYNC_NAMES:
                errors.append("%s: unknown async span name %r"
                              % (where, ev.get("name")))

    # Every span's tid must have a thread_name metadata record.
    for i, ev in enumerate(events):
        if isinstance(ev, dict) and ev.get("ph") == "X" and \
                ev.get("tid") not in thread_names:
            errors.append("traceEvents[%d]: tid %r has no thread_name"
                          % (i, ev.get("tid")))

    other = doc.get("otherData", {})
    for field in ("events_seen", "events_dropped"):
        if field not in other:
            errors.append("otherData missing '%s'" % field)
    return errors


def summarize(doc, top_n):
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    thread_names = {
        e["tid"]: e["args"]["name"] for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }

    other = doc.get("otherData", {})
    print("timeline: %d events (%s dropped), %d spans" %
          (len(events), other.get("events_dropped", "?"), len(spans)))

    by_track = collections.defaultdict(lambda: [0, 0])
    for s in spans:
        slot = by_track[thread_names.get(s["tid"], "?")]
        slot[0] += 1
        slot[1] += s.get("dur", 0)
    print("\nper-track spans:")
    for track, (count, cycles) in sorted(by_track.items()):
        print("  %-14s %8d spans  %12d cycles" % (track, count, cycles))

    # Hot addresses: cycles attributed to dispatch-path spans, keyed by
    # the DIR address the closing event carried.
    hot = collections.Counter()
    evictions = collections.Counter()
    misses = collections.Counter()
    for s in spans:
        addr = s.get("args", {}).get("addr")
        if addr is None:
            continue
        if s["name"] in ("dtb_hit", "dtb_miss"):
            hot[addr] += s.get("dur", 0)
        if s["name"] == "dtb_miss":
            misses[addr] += 1
        # An eviction span's addr is the victim: a high count means the
        # victim's set keeps thrashing (the set-conflict proxy).
        if s["name"] in ("dtb_evict", "trace_evict"):
            evictions[addr] += 1

    if hot:
        print("\ntop-%d hot DIR addresses (dispatch cycles):" % top_n)
        for addr, cycles in hot.most_common(top_n):
            print("  dir@%-8d %12d cycles  %4d misses" %
                  (addr, cycles, misses.get(addr, 0)))
    if evictions:
        print("\ntop-%d evicted DIR addresses (set-conflict proxy):"
              % top_n)
        for addr, count in evictions.most_common(top_n):
            print("  dir@%-8d evicted %d times" % (addr, count))

    # Served requests: rebuild each rid's span tree from the async
    # b/e pairs and break its wall time into wait vs execution.
    requests = collections.defaultdict(dict)
    for e in events:
        if e.get("ph") not in ("b", "e") or e.get("cat") != ASYNC_CAT:
            continue
        per_rid = requests[e.get("id")]
        spans = per_rid.setdefault(e["name"], [])
        if e["ph"] == "b":
            spans.append([e["ts"], None, e.get("args", {})])
        elif spans and spans[-1][1] is None:
            spans[-1][1] = e["ts"]
    if requests:
        rows = []
        for rid, per_rid in requests.items():
            root = per_rid.get("request", [[0, 0, {}]])[0]
            if root[1] is None:
                continue
            total = root[1] - root[0]
            args = root[2]
            wait = sum(b[1] - b[0] for b in per_rid.get("wait", [])
                       if b[1] is not None)
            run = sum(b[1] - b[0] for b in per_rid.get("slice", [])
                      if b[1] is not None)
            rows.append((total, wait, run, len(per_rid.get("slice", [])),
                         args.get("verb", "?"), rid))
        rows.sort(reverse=True)
        print("\nserved requests: %d  (top-%d slowest)" %
              (len(rows), top_n))
        print("  %-8s %-8s %10s %10s %10s %7s" %
              ("rid", "verb", "total", "wait", "run", "slices"))
        for total, wait, run, slices, verb, rid in rows[:top_n]:
            print("  %-8s %-8s %10d %10d %10d %7d" %
                  (rid, verb, total, wait, run, slices))


def main(argv):
    path = None
    check = False
    top_n = 10
    for arg in argv[1:]:
        if arg == "--check":
            check = True
        elif arg.startswith("--top="):
            top_n = int(arg[len("--top="):])
        elif arg.startswith("-"):
            print("usage: trace_report.py TIMELINE.json [--check] "
                  "[--top=N]", file=sys.stderr)
            return 2
        else:
            path = arg
    if path is None:
        print("usage: trace_report.py TIMELINE.json [--check] [--top=N]",
              file=sys.stderr)
        return 2

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 2

    errors = validate(doc)
    if errors:
        return fail(errors)
    if check:
        n_spans = sum(1 for e in doc["traceEvents"]
                      if e.get("ph") == "X")
        print("ok: %d events, %d spans, schema valid" %
              (len(doc["traceEvents"]), n_spans))
        return 0
    summarize(doc, top_n)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
