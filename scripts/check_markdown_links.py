#!/usr/bin/env python3
"""Check that intra-repo markdown links do not dangle.

Scans the repository's markdown files for inline links and validates
every link that points inside the repo:

  - relative file links must name an existing file or directory
    (resolved against the linking file's directory);
  - fragment links (``file.md#anchor`` or ``#anchor``) must match a
    heading in the target file, using GitHub's anchor slugging.

External links (http/https/mailto) are ignored — this is a hermetic
check, suitable for CI without network access.

Usage: check_markdown_links.py [repo_root]
Exit status: 0 if every intra-repo link resolves, 1 otherwise.
"""

import os
import re
import sys

# Files/directories never scanned or resolved against.
SKIP_DIRS = {".git", "build", "build-tsan", ".github"}
# Working notes, not documentation; their links aren't contractual.
SKIP_FILES = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md"}

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
    punctuation (except hyphens/underscores) dropped."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unwrap links
    slug = heading.strip().lower().replace(" ", "-")
    return re.sub(r"[^\w\-]", "", slug)


def collect_anchors(path: str) -> set:
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if not m:
                continue
            slug = github_anchor(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def iter_links(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in INLINE_LINK.finditer(line):
                yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    anchor_cache = {}
    errors = []
    checked = 0

    for md in sorted(markdown_files(root)):
        rel_md = os.path.relpath(md, root)
        for lineno, target in iter_links(md):
            if re.match(r"^[a-z][a-z0-9+.\-]*:", target):  # http:, mailto:
                continue
            checked += 1
            target_path, _, fragment = target.partition("#")
            if target_path:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md), target_path))
            else:
                resolved = md  # same-file fragment
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}:{lineno}: broken link "
                              f"'{target}' (no such file)")
                continue
            if fragment and resolved.endswith(".md"):
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = collect_anchors(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    errors.append(f"{rel_md}:{lineno}: broken anchor "
                                  f"'{target}'")

    for err in errors:
        print(err)
    print(f"checked {checked} intra-repo links, "
          f"{len(errors)} broken", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
