#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag wall-clock regressions.

Walks both documents in parallel and prints a per-metric delta for
every numeric leaf (nested objects and arrays included; array elements
are matched by their "scheme"/"name"/"label" key when present, by
position otherwise). Metrics whose name marks them as wall-clock
timings (``*_ns_per_instr``, ``*_ms``, ``*_ns``) are regression-checked:
if the candidate is more than the threshold slower than the baseline,
the script exits non-zero and lists the offenders.

Speedup-style metrics (``speedup``, ``*_speedup``) are reported but not
gated — they are ratios of two noisy timings and swing twice as hard as
either input. Counting metrics (``instrs``, ``iters``, ...) are
compared for drift but never gate either.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold=0.10]
Exit status: 0 if no timing regressed past the threshold, 1 otherwise,
2 on malformed input.
"""

import json
import sys

# Suffixes that mark a metric as a host wall-clock timing (gated).
TIMING_SUFFIXES = ("_ns_per_instr", "_ms", "_ns")
# Metric names reported but never gated.
UNGATED = ("speedup",)


def is_timing(name):
    return name.endswith(TIMING_SUFFIXES)


def is_ungated(name):
    return name == "speedup" or name.endswith("_speedup")


def element_key(element, index):
    """Stable identity of an array element for cross-file matching."""
    if isinstance(element, dict):
        for key in ("scheme", "name", "label"):
            if key in element:
                return str(element[key])
    return str(index)


def walk(base, cand, path, rows):
    """Collect (path, base, cand) rows for every shared numeric leaf."""
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in base:
            if key in cand:
                walk(base[key], cand[key], path + [key], rows)
    elif isinstance(base, list) and isinstance(cand, list):
        cand_by_key = {
            element_key(el, i): el for i, el in enumerate(cand)
        }
        for i, el in enumerate(base):
            key = element_key(el, i)
            if key in cand_by_key:
                walk(el, cand_by_key[key], path + [key], rows)
    elif isinstance(base, (int, float)) and not isinstance(base, bool) \
            and isinstance(cand, (int, float)):
        rows.append((".".join(path), float(base), float(cand)))


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(paths[0]) as f:
            base = json.load(f)
        with open(paths[1]) as f:
            cand = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("bench_compare: %s" % e, file=sys.stderr)
        return 2

    rows = []
    walk(base, cand, [], rows)
    if not rows:
        print("bench_compare: no shared numeric metrics", file=sys.stderr)
        return 2

    regressions = []
    print("%-55s %12s %12s %9s" % ("metric", "baseline", "candidate",
                                   "delta"))
    for name, b, c in rows:
        delta = (c - b) / b if b else 0.0
        gate = ""
        if is_timing(name) and not is_ungated(name):
            if delta > threshold:
                regressions.append((name, b, c, delta))
                gate = "  << REGRESSION"
        print("%-55s %12.4g %12.4g %+8.1f%%%s"
              % (name, b, c, delta * 100, gate))

    if regressions:
        print("\n%d wall-clock metric(s) regressed more than %.0f%%:"
              % (len(regressions), threshold * 100))
        for name, b, c, delta in regressions:
            print("  %s: %.4g -> %.4g (%+.1f%%)"
                  % (name, b, c, delta * 100))
        return 1
    print("\nno wall-clock regression beyond %.0f%%" % (threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
