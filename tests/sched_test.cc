/**
 * @file
 * Multi-programming (src/sched/ and the PR-6 lifecycle fixes): ASID
 * tagging and partitioning in the shared DTB, the flush-through-
 * eviction path and its trace-anchor coupling, residency accounting
 * for never-evicted entries, resetStats symmetry, and the tenant
 * scheduler's determinism and policy behavior.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/dtb.hh"
#include "dir/encoding.hh"
#include "hlr/compiler.hh"
#include "sched/scheduler.hh"
#include "uhm/machine.hh"

namespace uhm
{
namespace
{

/** A loop hot enough that the tier promotes it at low thresholds. */
const char *kHotLoop =
    "program t; var i, s; begin i := 400; s := 0; "
    "while i > 0 do s := s + i; i := i - 1; od; write s; end.";

/** A second program with a different answer, for tenant mixes. */
const char *kCountUp =
    "program u; var i, s; begin i := 0; s := 0; "
    "while i < 300 do s := s + 2; i := i + 1; od; write s; end.";

std::vector<ShortInstr>
tinyCode()
{
    return std::vector<ShortInstr>(1);
}

/** Deterministic serialization of a scheduler run, for byte-compares. */
std::string
serialize(const sched::SchedResult &r)
{
    std::ostringstream os;
    for (const auto &kv : r.counters)
        os << kv.first << "=" << kv.second << "\n";
    for (const auto &kv : r.histograms)
        os << kv.first << " n=" << kv.second.count
           << " min=" << kv.second.min << " max=" << kv.second.max
           << "\n";
    for (const sched::TenantResult &t : r.tenants) {
        os << t.name << ":";
        for (int64_t v : t.run.output)
            os << " " << v;
        os << "\n";
    }
    return os.str();
}

std::vector<sched::TenantSpec>
mixedTenants(size_t n)
{
    std::vector<sched::TenantSpec> tenants;
    for (size_t i = 0; i < n; ++i) {
        sched::TenantSpec spec;
        spec.name = "t" + std::to_string(i);
        spec.program =
            hlr::compileSource(i % 2 == 0 ? kHotLoop : kCountUp);
        spec.priority = 1 + static_cast<uint32_t>(i % 3);
        tenants.push_back(std::move(spec));
    }
    return tenants;
}

sched::SchedConfig
schedConfig(sched::SwitchMode mode, MachineKind kind = MachineKind::Dtb)
{
    sched::SchedConfig sc;
    sc.switchMode = mode;
    sc.quantumCycles = 1000;
    sc.machine.kind = kind;
    return sc;
}

// ---- ASID tagging and partitioning -----------------------------------------

TEST(DtbAsid, EntriesMatchOnlyTheirAddressSpace)
{
    Dtb dtb(DtbConfig{});
    dtb.setAsid(0);
    dtb.insert(100, tinyCode());
    EXPECT_TRUE(dtb.lookup(100).hit);

    dtb.setAsid(1);
    EXPECT_FALSE(dtb.lookup(100).hit); // other tenant's entry
    dtb.insert(100, tinyCode());       // same tag, own space
    EXPECT_TRUE(dtb.lookup(100).hit);

    dtb.setAsid(0);
    EXPECT_TRUE(dtb.lookup(100).hit); // original survives, still matches
}

TEST(DtbAsid, PartitionedSetSpacesAreDisjoint)
{
    DtbConfig cfg;
    cfg.numPartitions = 4;
    Dtb dtb(cfg);
    uint64_t spp = dtb.numSets() / 4;
    ASSERT_GE(spp, 1u);
    for (uint32_t asid = 0; asid < 6; ++asid) {
        dtb.setAsid(asid);
        uint64_t lo = (asid % 4) * spp;
        for (uint64_t addr = 0; addr < 4096; addr += 37) {
            uint64_t set = dtb.setOf(addr);
            EXPECT_GE(set, lo);
            EXPECT_LT(set, lo + spp);
        }
    }
}

// ---- flush through the eviction path ---------------------------------------

TEST(DtbFlush, ReportsEveryVictimAndEmptiesTheBuffer)
{
    Dtb dtb(DtbConfig{});
    dtb.insert(100, tinyCode(), 10);
    dtb.insert(200, tinyCode(), 20);
    ASSERT_TRUE(dtb.markTraceAnchor(200));

    std::vector<Dtb::FlushedEntry> victims = dtb.flush(50);
    ASSERT_EQ(victims.size(), 2u);
    bool saw_anchor = false;
    for (const Dtb::FlushedEntry &v : victims) {
        if (v.tag == 200) {
            saw_anchor = true;
            EXPECT_TRUE(v.anchoredTrace);
            EXPECT_EQ(v.residency, 30u);
        } else {
            EXPECT_EQ(v.tag, 100u);
            EXPECT_FALSE(v.anchoredTrace);
            EXPECT_EQ(v.residency, 40u);
        }
    }
    EXPECT_TRUE(saw_anchor);
    EXPECT_FALSE(dtb.lookup(100).hit);
    EXPECT_FALSE(dtb.lookup(200).hit);
    // Flush accounting is distinct from capacity-eviction accounting.
    EXPECT_EQ(dtb.flushes(), 1u);
    EXPECT_EQ(dtb.flushedEntries(), 2u);
    EXPECT_EQ(dtb.stats().get("dtb_evictions"), 0u);
}

TEST(DtbFlush, FlushCrossesAsidBoundaries)
{
    Dtb dtb(DtbConfig{});
    dtb.setAsid(0);
    dtb.insert(100, tinyCode());
    dtb.setAsid(1);
    dtb.insert(300, tinyCode());
    std::vector<Dtb::FlushedEntry> victims = dtb.flush(0);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_NE(victims[0].asid, victims[1].asid);
}

TEST(TieredFlush, FlushThenDispatchMatchesAnUnflushedRun)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Tiered;
    cfg.tier.hotThreshold = 2; // traces form early, so flushes hit them

    Machine ref(*image, cfg);
    RunResult want = ref.run();

    // Interleave slices with full flushes: every resident translation
    // dies, including trace anchors — stale traces must never dispatch.
    Machine m(*image, cfg);
    m.beginRun();
    for (int i = 0; i < 20 && !m.finished(); ++i) {
        m.runSlice(500);
        m.flushDtb();
    }
    m.runSlice(UINT64_MAX);
    RunResult got = m.finishRun();

    EXPECT_EQ(got.output, want.output);
    EXPECT_EQ(got.dirInstrs, want.dirInstrs);
    EXPECT_GT(got.counters.at("dtb.flushes"), 0u);
    // Flushing destroys warmth; the flushed run cannot be cheaper.
    EXPECT_GE(got.cycles, want.cycles);
}

// ---- residency accounting (never-evicted entries) --------------------------

TEST(DtbResidency, NeverEvictedEntriesAreDrainedAtHalt)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    cfg.dtb.capacityBytes = 1 << 16; // working set fits: no evictions
    Machine m(*image, cfg);
    RunResult r = m.run();

    EXPECT_EQ(r.counters.at("dtb.evictions"), 0u);
    // Before the halt-time drain this histogram was empty: residency
    // was only ever recorded for eviction victims.
    ASSERT_EQ(r.histograms.count("dtb.residency_cycles"), 1u);
    EXPECT_EQ(r.histograms.at("dtb.residency_cycles").count,
              r.counters.at("dtb.inserts"));
    EXPECT_GT(r.histograms.at("dtb.residency_cycles").count, 0u);
}

// ---- resetStats symmetry ---------------------------------------------------

TEST(ResetStats, SecondRunIsIdenticalToAFreshMachine)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    for (MachineKind kind :
         {MachineKind::Dtb, MachineKind::Dtb2, MachineKind::Tiered}) {
        MachineConfig cfg;
        cfg.kind = kind;
        Machine fresh(*image, cfg);
        RunResult want = fresh.run();

        Machine reused(*image, cfg);
        reused.run();
        RunResult got = reused.run(); // full reset between runs

        EXPECT_EQ(got.cycles, want.cycles) << machineKindName(kind);
        EXPECT_EQ(got.output, want.output) << machineKindName(kind);
        EXPECT_EQ(got.counters, want.counters) << machineKindName(kind);
        for (const auto &kv : want.histograms) {
            ASSERT_EQ(got.histograms.count(kv.first), 1u)
                << machineKindName(kind) << " " << kv.first;
            EXPECT_EQ(got.histograms.at(kv.first).count,
                      kv.second.count)
                << machineKindName(kind) << " " << kv.first;
        }
    }
}

TEST(ResetStats, DtbCountersClearButResidencySurvives)
{
    Dtb dtb(DtbConfig{});
    dtb.insert(100, tinyCode());
    dtb.lookup(100);
    dtb.lookup(999);
    dtb.resetStats();
    EXPECT_EQ(dtb.hits(), 0u);
    EXPECT_EQ(dtb.misses(), 0u);
    EXPECT_EQ(dtb.flushes(), 0u);
    EXPECT_EQ(dtb.flushedEntries(), 0u);
    EXPECT_EQ(dtb.stats().get("dtb_inserts"), 0u);
    // The translation itself is behavioral state, not statistics.
    EXPECT_TRUE(dtb.lookup(100).hit);
}

// ---- the tenant scheduler --------------------------------------------------

TEST(Scheduler, SingleTenantMatchesAPlainRun)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    Machine m(*image, cfg);
    RunResult want = m.run();

    sched::SchedConfig sc = schedConfig(sched::SwitchMode::TagAndShare);
    sched::SchedResult sr = sched::runScheduled(sc, mixedTenants(1));
    ASSERT_EQ(sr.tenants.size(), 1u);
    EXPECT_EQ(sr.tenants[0].run.output, want.output);
    EXPECT_EQ(sr.tenants[0].run.cycles, want.cycles);
    EXPECT_EQ(sr.totalCycles, want.cycles);
    EXPECT_EQ(sr.switches, 0u);
}

TEST(Scheduler, TagAndFlushAgreeArchitecturally)
{
    sched::SchedResult tag = sched::runScheduled(
        schedConfig(sched::SwitchMode::TagAndShare), mixedTenants(4));
    sched::SchedResult flush = sched::runScheduled(
        schedConfig(sched::SwitchMode::FlushOnSwitch), mixedTenants(4));

    ASSERT_EQ(tag.tenants.size(), flush.tenants.size());
    for (size_t i = 0; i < tag.tenants.size(); ++i) {
        // What each tenant computes is identical; only the translation
        // timing differs.
        EXPECT_EQ(tag.tenants[i].run.output,
                  flush.tenants[i].run.output);
        EXPECT_EQ(tag.tenants[i].run.dirInstrs,
                  flush.tenants[i].run.dirInstrs);
    }
    EXPECT_EQ(flush.flushes, flush.switches);
    EXPECT_EQ(tag.flushes, 0u);
    // Cold-starting every slice costs real (simulated) cycles.
    EXPECT_GT(flush.totalCycles, tag.totalCycles);
}

TEST(Scheduler, MergesAreByteIdenticalAcrossJobCounts)
{
    // The bench fans whole scheduler runs over worker threads; each
    // run is single-threaded and integer-deterministic, so the merged
    // serialization must not depend on the job count.
    auto runAll = [](unsigned jobs) {
        bench::SweepRunner runner(jobs);
        std::vector<std::string> out = runner.map(4, [](size_t i) {
            sched::SchedConfig sc = schedConfig(
                i % 2 == 0 ? sched::SwitchMode::TagAndShare
                           : sched::SwitchMode::FlushOnSwitch);
            return serialize(
                sched::runScheduled(sc, mixedTenants(4)));
        });
        std::string merged;
        for (const std::string &s : out)
            merged += s;
        return merged;
    };
    EXPECT_EQ(runAll(1), runAll(8));
}

TEST(Scheduler, PriorityHoldsTheMachineForConsecutiveQuanta)
{
    std::vector<sched::TenantSpec> tenants = mixedTenants(4);
    sched::SchedConfig rr = schedConfig(sched::SwitchMode::TagAndShare);
    rr.policy = sched::Policy::RoundRobin;
    sched::SchedConfig prio = rr;
    prio.policy = sched::Policy::Priority;

    sched::SchedResult r_rr = sched::runScheduled(rr, tenants);
    sched::SchedResult r_prio = sched::runScheduled(prio, tenants);
    // Priorities 1..3 batch quanta, so strictly fewer transitions.
    EXPECT_LT(r_prio.switches, r_rr.switches);
    for (size_t i = 0; i < tenants.size(); ++i)
        EXPECT_EQ(r_prio.tenants[i].run.output,
                  r_rr.tenants[i].run.output);
}

TEST(Scheduler, MissFeedbackStretchesColdQuanta)
{
    std::vector<sched::TenantSpec> tenants = mixedTenants(4);
    sched::SchedConfig rr = schedConfig(sched::SwitchMode::FlushOnSwitch);
    sched::SchedConfig fb = rr;
    fb.policy = sched::Policy::MissFeedback;

    sched::SchedResult r_rr = sched::runScheduled(rr, tenants);
    sched::SchedResult r_fb = sched::runScheduled(fb, tenants);
    // Flush mode makes every slice start cold, so feedback stretches
    // quanta and the tenants need fewer slices overall.
    EXPECT_LT(r_fb.switches, r_rr.switches);
    for (size_t i = 0; i < tenants.size(); ++i)
        EXPECT_EQ(r_fb.tenants[i].run.output,
                  r_rr.tenants[i].run.output);
}

TEST(Scheduler, TieredTenantsFormAndInvalidateTracesSafely)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Tiered;
    cfg.tier.hotThreshold = 2;
    Machine solo(*image, cfg);
    RunResult want = solo.run();

    for (sched::SwitchMode mode : {sched::SwitchMode::TagAndShare,
                                   sched::SwitchMode::FlushOnSwitch}) {
        sched::SchedConfig sc = schedConfig(mode, MachineKind::Tiered);
        sc.machine.tier.hotThreshold = 2;
        std::vector<sched::TenantSpec> tenants;
        for (size_t i = 0; i < 3; ++i) {
            sched::TenantSpec spec;
            spec.name = "t" + std::to_string(i);
            spec.program = prog;
            tenants.push_back(std::move(spec));
        }
        sched::SchedResult sr =
            sched::runScheduled(sc, std::move(tenants));
        for (const sched::TenantResult &t : sr.tenants) {
            EXPECT_EQ(t.run.output, want.output)
                << sched::switchModeName(mode);
            EXPECT_EQ(t.run.dirInstrs, want.dirInstrs)
                << sched::switchModeName(mode);
        }
        if (mode == sched::SwitchMode::FlushOnSwitch)
            EXPECT_GT(sr.flushes, 0u);
    }
}

TEST(Scheduler, PartitionedTenantsCannotEvictEachOther)
{
    std::vector<sched::TenantSpec> tenants = mixedTenants(4);
    sched::SchedConfig shared =
        schedConfig(sched::SwitchMode::TagAndShare);
    sched::SchedConfig part = shared;
    part.machine.dtb.numPartitions = 4;

    sched::SchedResult r_shared = sched::runScheduled(shared, tenants);
    sched::SchedResult r_part = sched::runScheduled(part, tenants);
    for (size_t i = 0; i < tenants.size(); ++i)
        EXPECT_EQ(r_part.tenants[i].run.output,
                  r_shared.tenants[i].run.output);
    // With a private region each, cross-tenant interference is gone:
    // no tenant's miss count can exceed its shared-mode count.
    for (size_t i = 0; i < tenants.size(); ++i)
        EXPECT_LE(r_part.tenants[i].dtbMisses,
                  r_shared.tenants[i].dtbMisses);
}

} // namespace
} // namespace uhm
