/**
 * @file
 * Tests for the semantic-level-raising (fusion) pass: pattern hits,
 * branch retargeting, interior-target protection, and behavioral
 * equivalence across every machine organization.
 */

#include <gtest/gtest.h>

#include "dir/fusion.hh"
#include "hlr/compiler.hh"
#include "hlr/interp.hh"
#include "hlr/parser.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

std::vector<int64_t>
runOn(const DirProgram &prog, MachineKind kind, EncodingScheme scheme,
      const std::vector<int64_t> &input = {})
{
    MachineConfig cfg;
    cfg.kind = kind;
    return runProgram(prog, scheme, cfg, input).output;
}

TEST(Fusion, FusesTheAdvertisedPatterns)
{
    DirProgram prog = hlr::compileSource(
        "program t; var i, s; begin s := 0; i := 10; "
        "while i > 0 do s := s + 2; i := i - 1; od; write s; "
        "end.");
    FusionStats stats;
    DirProgram fused = raiseSemanticLevel(prog, &stats);

    EXPECT_LT(fused.size(), prog.size());
    EXPECT_EQ(stats.instrsBefore, prog.size());
    EXPECT_EQ(stats.instrsAfter, fused.size());
    // s := 0 / i := 10 fuse to SETL; the loop's s := s + 2 and
    // i := i - 1 fuse to INCL.
    EXPECT_GE(stats.fused[Op::SETL], 2u);
    EXPECT_GE(stats.fused[Op::INCL], 2u);
    EXPECT_GT(stats.totalFused(), 0u);
}

TEST(Fusion, CountdownLoopGetsBranchFusion)
{
    // A PUSHL feeding JZ appears in synthetic countdown loops.
    workload::SyntheticConfig cfg;
    cfg.seed = 3;
    DirProgram prog = workload::generateSynthetic(cfg);
    FusionStats stats;
    raiseSemanticLevel(prog, &stats);
    EXPECT_GT(stats.fused[Op::BRZL], 0u);
}

TEST(Fusion, InteriorBranchTargetBlocksFusion)
{
    // Build: target lands on the STOREL of a would-be SETL pair.
    DirProgram p;
    p.name = "interior";
    p.numGlobals = 1;
    Contour main_ctr;
    main_ctr.name = "<main>";
    main_ctr.depth = 1;
    main_ctr.slotsAtDepth = {1, 0};
    p.contours.push_back(main_ctr);
    auto emit = [&](DirInstruction ins) {
        p.instrs.push_back(ins);
        p.contourOf.push_back(0);
        return p.instrs.size() - 1;
    };
    p.entry = emit({Op::ENTER, 1, 0, 0});
    emit({Op::PUSHC, 5});     // 1
    emit({Op::STOREL, 0, 0}); // 2  <- jump target: must stay separate
    emit({Op::PUSHL, 0, 0});  // 3
    emit({Op::WRITE});        // 4
    emit({Op::PUSHC, 0});     // 5
    emit({Op::JNZ, 2});       // 6 (never taken; references index 2)
    emit({Op::HALT});         // 7
    p.contours[0].entry = p.entry;
    p.validate();

    FusionStats stats;
    DirProgram fused = raiseSemanticLevel(p, &stats);
    // PUSHC@1;STOREL@2 must NOT fuse; PUSHL@3;WRITE@4 must.
    EXPECT_EQ(stats.fused[Op::SETL], 0u);
    EXPECT_EQ(stats.fused[Op::WRITEL], 1u);

    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    EXPECT_EQ(runProgram(fused, EncodingScheme::Packed, cfg).output,
              std::vector<int64_t>{5});
}

TEST(Fusion, BranchTargetsRetargetCorrectly)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("collatz").source);
    DirProgram fused = raiseSemanticLevel(prog);
    fused.validate();
    // Behavior is the ground truth for retargeting.
    EXPECT_EQ(runOn(fused, MachineKind::Conventional,
                    EncodingScheme::Packed),
              std::vector<int64_t>{111});
}

TEST(Fusion, IdempotentOnAlreadyRaisedPrograms)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("sieve").source);
    DirProgram once = raiseSemanticLevel(prog);
    FusionStats stats;
    DirProgram twice = raiseSemanticLevel(once, &stats);
    // The patterns target base opcodes only; nothing new fuses...
    EXPECT_EQ(once.size(), twice.size());
    // ...except possibly pairs newly adjacent after the first pass;
    // allow zero or a small residue but require convergence.
    DirProgram thrice = raiseSemanticLevel(twice);
    EXPECT_EQ(twice.size(), thrice.size());
}

class FusionDifferential : public ::testing::TestWithParam<const char *>
{};

TEST_P(FusionDifferential, RaisedProgramBehavesIdentically)
{
    const auto &sample = workload::sampleByName(GetParam());
    hlr::AstProgram ast = hlr::parse(sample.source);
    std::vector<int64_t> reference =
        hlr::interpretHlr(ast, sample.input).output;
    DirProgram fused = raiseSemanticLevel(hlr::compile(ast));

    for (EncodingScheme scheme : {EncodingScheme::Packed,
                                  EncodingScheme::Huffman}) {
        for (MachineKind kind : {MachineKind::Conventional,
                                 MachineKind::Dtb, MachineKind::Dtb2}) {
            EXPECT_EQ(runOn(fused, kind, scheme, sample.input),
                      reference)
                << encodingName(scheme) << "/" << machineKindName(kind);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Samples, FusionDifferential,
                         ::testing::Values("sieve", "fib", "gcd",
                                           "collatz", "matmul", "qsort",
                                           "queens", "nest", "echo",
                                           "adler", "bsearch"));

TEST(Fusion, RaisedLevelExecutesFewerInstructions)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("sieve").source);
    DirProgram fused = raiseSemanticLevel(prog);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;

    RunResult base = runProgram(prog, EncodingScheme::Huffman, cfg);
    RunResult raised = runProgram(fused, EncodingScheme::Huffman, cfg);
    EXPECT_EQ(base.output, raised.output);
    // Fewer, larger instructions: at least 20% fewer dynamic DIR
    // instructions and fewer total cycles.
    EXPECT_LT(raised.dirInstrs, base.dirInstrs * 8 / 10);
    EXPECT_LT(raised.cycles, base.cycles);
}

TEST(Fusion, SyntheticProgramsSurviveFusionDifferentially)
{
    for (uint64_t seed : {11u, 22u, 33u}) {
        workload::SyntheticConfig cfg;
        cfg.seed = seed;
        cfg.iterations = 10;
        DirProgram prog = workload::generateSynthetic(cfg);
        DirProgram fused = raiseSemanticLevel(prog);
        MachineConfig mc;
        mc.kind = MachineKind::Dtb;
        EXPECT_EQ(
            runProgram(prog, EncodingScheme::Huffman, mc).output,
            runProgram(fused, EncodingScheme::Huffman, mc).output)
            << "seed " << seed;
    }
}

} // anonymous namespace
} // namespace uhm
