/**
 * @file
 * Tests for the DIR assembler: parsing, error handling, and exact
 * round-tripping of compiled and synthetic programs.
 */

#include <gtest/gtest.h>

#include "dir/asm.hh"
#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

const char *tinyAsm = R"(
; a small hand-written DIR program: writes 1 + 2
.program tiny
.globals 1

.entry start
.in <main>
start:
    ENTER 1 0 0
    PUSHC 1
    PUSHC 2
    ADD
    STOREL 0 0
    PUSHL 0 0
    WRITE
    HALT
)";

TEST(DirAsm, ParsesHandWrittenProgram)
{
    DirProgram prog = parseDirAssembly(tinyAsm);
    EXPECT_EQ(prog.name, "tiny");
    EXPECT_EQ(prog.numGlobals, 1u);
    EXPECT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog.instrs[0].op, Op::ENTER);
    EXPECT_EQ(prog.instrs.back().op, Op::HALT);
}

TEST(DirAsm, HandWrittenProgramRuns)
{
    DirProgram prog = parseDirAssembly(tinyAsm);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    EXPECT_EQ(runProgram(prog, EncodingScheme::Huffman, cfg).output,
              std::vector<int64_t>{3});
}

TEST(DirAsm, LabelsAndBranchesResolve)
{
    DirProgram prog = parseDirAssembly(R"(
.program branchy
.globals 1
.in <main>
    ENTER 1 0 0
    PUSHC 3
    STOREL 0 0
top:
    PUSHL 0 0
    JZ done
    PUSHL 0 0
    WRITE
    PUSHL 0 0
    PUSHC 1
    SUB
    STOREL 0 0
    JMP top
done:
    HALT
)");
    MachineConfig cfg;
    cfg.kind = MachineKind::Conventional;
    EXPECT_EQ(runProgram(prog, EncodingScheme::Packed, cfg).output,
              (std::vector<int64_t>{3, 2, 1}));
}

TEST(DirAsm, ProceduresByName)
{
    DirProgram prog = parseDirAssembly(R"(
.program withproc
.globals 1
.proc double parent=<main> locals=1 params=1
.in double
    ENTER 2 1 1
    PUSHL 2 0
    PUSHC 2
    MUL
    RET 2 1
.in <main>
main:
    ENTER 1 0 0
    PUSHC 21
    CALLP double
    WRITE
    HALT
.entry main
)");
    EXPECT_EQ(prog.entry, prog.contours[0].entry);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    EXPECT_EQ(runProgram(prog, EncodingScheme::Huffman, cfg).output,
              std::vector<int64_t>{42});
}

TEST(DirAsm, ErrorsCarryLineNumbers)
{
    try {
        parseDirAssembly(".program p\n.globals 1\n.in <main>\nBOGUS\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 4"),
                  std::string::npos);
    }
}

TEST(DirAsm, UnknownLabelIsFatal)
{
    EXPECT_THROW(parseDirAssembly(
        ".globals 1\n.in <main>\nENTER 1 0 0\nJMP nowhere\nHALT\n"),
        FatalError);
}

TEST(DirAsm, WrongArityIsFatal)
{
    EXPECT_THROW(parseDirAssembly(
        ".globals 1\n.in <main>\nPUSHC 1 2\nHALT\n"), FatalError);
}

TEST(DirAsm, DuplicateLabelIsFatal)
{
    EXPECT_THROW(parseDirAssembly(
        ".globals 1\n.in <main>\nx:\nENTER 1 0 0\nx:\nHALT\n"),
        FatalError);
}

TEST(DirAsm, EmptyProgramIsFatal)
{
    EXPECT_THROW(parseDirAssembly("; nothing here\n"), FatalError);
}

TEST(DirAsm, ContourWithoutCodeIsFatal)
{
    EXPECT_THROW(parseDirAssembly(
        ".globals 0\n.proc p parent=<main> locals=0 params=0\n"
        ".in <main>\nHALT\n"), FatalError);
}

/** Round-trip every sample program and a synthetic one exactly. */
class AsmRoundTrip : public ::testing::TestWithParam<const char *>
{};

TEST_P(AsmRoundTrip, ReparseReproducesProgram)
{
    DirProgram original;
    if (std::string(GetParam()) == "synthetic") {
        workload::SyntheticConfig cfg;
        cfg.seed = 77;
        original = workload::generateSynthetic(cfg);
    } else {
        original = hlr::compileSource(
            workload::sampleByName(GetParam()).source);
    }

    DirProgram reparsed = parseDirAssembly(toDirAssembly(original));

    ASSERT_EQ(reparsed.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reparsed.instrs[i], original.instrs[i]) << "at " << i;
        EXPECT_EQ(reparsed.contourOf[i], original.contourOf[i]);
    }
    EXPECT_EQ(reparsed.entry, original.entry);
    EXPECT_EQ(reparsed.numGlobals, original.numGlobals);
    ASSERT_EQ(reparsed.contours.size(), original.contours.size());
    for (size_t c = 0; c < original.contours.size(); ++c) {
        EXPECT_EQ(reparsed.contours[c].depth,
                  original.contours[c].depth);
        EXPECT_EQ(reparsed.contours[c].nlocals,
                  original.contours[c].nlocals);
        EXPECT_EQ(reparsed.contours[c].nparams,
                  original.contours[c].nparams);
        EXPECT_EQ(reparsed.contours[c].entry,
                  original.contours[c].entry);
        EXPECT_EQ(reparsed.contours[c].slotsAtDepth,
                  original.contours[c].slotsAtDepth);
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, AsmRoundTrip,
                         ::testing::Values("sieve", "fib", "ack", "gcd",
                                           "collatz", "power", "matmul",
                                           "qsort", "queens", "nest",
                                           "echo", "hanoi", "tak",
                                           "bsearch", "adler",
                                           "synthetic"));

TEST(DirAsm, RoundTrippedProgramExecutesIdentically)
{
    const auto &sample = workload::sampleByName("qsort");
    DirProgram original = hlr::compileSource(sample.source);
    DirProgram reparsed = parseDirAssembly(toDirAssembly(original));
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    EXPECT_EQ(runProgram(original, EncodingScheme::Huffman, cfg).output,
              runProgram(reparsed, EncodingScheme::Huffman, cfg).output);
}

} // anonymous namespace
} // namespace uhm
