/**
 * @file
 * Tests for the PSDER level: short-format ISA, the micro-assembler,
 * the semantic-routine library and the staging/lowering spec.
 */

#include <gtest/gtest.h>

#include "dir/encoding.hh"
#include "hlr/compiler.hh"
#include "psder/micro_asm.hh"
#include "psder/routines.hh"
#include "psder/short_isa.hh"
#include "psder/staging.hh"
#include "support/logging.hh"
#include "workload/samples.hh"

namespace uhm
{
namespace
{

// ---- short-format ISA ------------------------------------------------------

TEST(ShortIsa, ToStringFlavors)
{
    EXPECT_EQ((ShortInstr{SOp::PUSH, SMode::Imm, 5}).toString(),
              "PUSH #5");
    EXPECT_EQ((ShortInstr{SOp::PUSH, SMode::Direct, 7}).toString(),
              "PUSH @7");
    EXPECT_EQ((ShortInstr{SOp::PUSH, SMode::Indirect, 7}).toString(),
              "PUSH @@7");
    EXPECT_EQ((ShortInstr{SOp::INTERP, SMode::Stack, 0}).toString(),
              "INTERP (stack)");
    EXPECT_EQ((ShortInstr{SOp::CALL, SMode::Imm, 3}).toString(),
              "CALL #3");
}

// ---- micro-assembler -------------------------------------------------------

TEST(MicroAsm, ForwardAndBackwardBranchesResolve)
{
    MicroAsm a("loop3");
    auto top = a.newLabel();
    auto out = a.newLabel();
    a.movi(1, 3)
     .bind(top)
     .brz(1, out)
     .addi(1, 1, -1)
     .br(top)
     .bind(out)
     .done();
    MicroRoutine r = a.finish();
    ASSERT_EQ(r.ops.size(), 5u);
    // brz at index 1 jumps to done at index 4: imm = 4 - 2 = 2.
    EXPECT_EQ(r.ops[1].imm, 2);
    // br at index 3 jumps to top at index 1: imm = 1 - 4 = -3.
    EXPECT_EQ(r.ops[3].imm, -3);
}

TEST(MicroAsm, UnboundLabelPanics)
{
    MicroAsm a("bad");
    auto l = a.newLabel();
    a.br(l).done();
    EXPECT_THROW(a.finish(), PanicError);
}

TEST(MicroAsm, MissingDonePanics)
{
    MicroAsm a("bad");
    a.movi(1, 0);
    EXPECT_THROW(a.finish(), PanicError);
}

TEST(MicroAsm, DoubleBindPanics)
{
    MicroAsm a("bad");
    auto l = a.newLabel();
    a.bind(l);
    EXPECT_THROW(a.bind(l), PanicError);
}

// ---- routine library -------------------------------------------------------

TEST(Routines, LibraryCoversSemanticOpcodes)
{
    MachineLayout layout;
    RoutineLibrary lib(layout);
    // Opcodes with real semantics must have routines.
    for (Op op : {Op::PUSHL, Op::STOREL, Op::ADDR, Op::LOADI, Op::STOREI,
                  Op::ADD, Op::SUB, Op::MUL, Op::DIV, Op::MOD, Op::NEG,
                  Op::AND, Op::OR, Op::XOR, Op::NOT, Op::SHL, Op::SHR,
                  Op::EQ, Op::NE, Op::LT, Op::LE, Op::GT, Op::GE,
                  Op::JZ, Op::JNZ, Op::CALLP, Op::ENTER, Op::RET,
                  Op::READ, Op::WRITE, Op::SEMWORK, Op::DUP, Op::DROP,
                  Op::SWAP}) {
        EXPECT_TRUE(lib.hasRoutine(op)) << opName(op);
    }
    // Pure control / no-op opcodes have none.
    for (Op op : {Op::PUSHC, Op::JMP, Op::NOP, Op::HALT})
        EXPECT_FALSE(lib.hasRoutine(op)) << opName(op);
}

TEST(Routines, EveryRoutineEndsWithDone)
{
    MachineLayout layout;
    RoutineLibrary lib(layout);
    for (size_t i = 0; i < numOps; ++i) {
        const MicroRoutine &r = lib.byId(static_cast<int64_t>(i));
        if (!r.empty())
            EXPECT_EQ(r.ops.back().op, MOp::DONE) << r.name;
    }
}

TEST(Routines, TotalFootprintIsModest)
{
    // The semantic routines must fit comfortably in level-1 memory
    // (section 3.3's constraint).
    MachineLayout layout;
    RoutineLibrary lib(layout);
    EXPECT_GT(lib.totalSizeWords(), 50u);
    EXPECT_LT(lib.totalSizeWords(), layout.level1Words / 4);
}

TEST(Routines, RoutineIdRoundTrips)
{
    MachineLayout layout;
    RoutineLibrary lib(layout);
    EXPECT_EQ(&lib.byId(RoutineLibrary::routineId(Op::ADD)),
              &lib.routine(Op::ADD));
}

// ---- staging ---------------------------------------------------------------

class StagingFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = hlr::compileSource(
            workload::sampleByName("fib").source);
        image_ = encodeDir(prog_, EncodingScheme::Packed);
    }

    Staging
    stageAt(size_t index)
    {
        DecodeResult res = image_->decodeAt(image_->bitAddrOf(index));
        return stageInstruction(res.instr, *image_, res.index);
    }

    DirProgram prog_;
    std::unique_ptr<EncodedDir> image_;
};

TEST_F(StagingFixture, EveryInstructionLowersToInterpTerminated)
{
    for (size_t i = 0; i < prog_.size(); ++i) {
        Staging st = stageAt(i);
        std::vector<ShortInstr> code = lowerStaging(st);
        ASSERT_FALSE(code.empty());
        EXPECT_EQ(code.back().op, SOp::INTERP) << "instr " << i;
        // INTERP appears exactly once, at the end.
        for (size_t k = 0; k + 1 < code.size(); ++k)
            EXPECT_NE(code[k].op, SOp::INTERP);
    }
}

TEST_F(StagingFixture, PushCountMatchesStagedValues)
{
    for (size_t i = 0; i < prog_.size(); ++i) {
        Staging st = stageAt(i);
        std::vector<ShortInstr> code = lowerStaging(st);
        size_t pushes = 0, calls = 0;
        for (const ShortInstr &si : code) {
            pushes += si.op == SOp::PUSH;
            calls += si.op == SOp::CALL;
        }
        EXPECT_EQ(pushes, st.pushes.size());
        EXPECT_EQ(calls, st.routine >= 0 ? 1u : 0u);
    }
}

TEST_F(StagingFixture, SequentialOpsTargetNextInstruction)
{
    for (size_t i = 0; i < prog_.size(); ++i) {
        const DirInstruction &ins = prog_.instrs[i];
        if (isControlTransfer(ins.op) || ins.op == Op::HALT)
            continue;
        Staging st = stageAt(i);
        EXPECT_EQ(st.next, NextKind::Imm);
        EXPECT_EQ(st.nextImm, image_->bitAddrOf(i + 1));
    }
}

TEST_F(StagingFixture, CallpPushesEntryAndReturnAddresses)
{
    for (size_t i = 0; i < prog_.size(); ++i) {
        if (prog_.instrs[i].op != Op::CALLP)
            continue;
        Staging st = stageAt(i);
        ASSERT_EQ(st.pushes.size(), 2u);
        const Contour &callee = prog_.procContour(
            static_cast<size_t>(prog_.instrs[i].operands[0]));
        EXPECT_EQ(static_cast<uint64_t>(st.pushes[0]),
                  image_->bitAddrOf(callee.entry));
        EXPECT_EQ(static_cast<uint64_t>(st.pushes[1]),
                  image_->bitAddrOf(i + 1));
        EXPECT_EQ(st.next, NextKind::Stack);
    }
}

TEST_F(StagingFixture, HaltLowersToDistinguishedAddress)
{
    for (size_t i = 0; i < prog_.size(); ++i) {
        if (prog_.instrs[i].op != Op::HALT)
            continue;
        Staging st = stageAt(i);
        EXPECT_EQ(st.next, NextKind::Halt);
        std::vector<ShortInstr> code = lowerStaging(st);
        ASSERT_EQ(code.size(), 1u);
        EXPECT_EQ(code[0].op, SOp::INTERP);
        EXPECT_EQ(static_cast<uint64_t>(code[0].operand), haltBitAddr);
    }
}

TEST_F(StagingFixture, PushcStagesLiteralWithoutRoutine)
{
    for (size_t i = 0; i < prog_.size(); ++i) {
        if (prog_.instrs[i].op != Op::PUSHC)
            continue;
        Staging st = stageAt(i);
        ASSERT_EQ(st.pushes.size(), 1u);
        EXPECT_EQ(st.pushes[0], prog_.instrs[i].operands[0]);
        EXPECT_EQ(st.routine, -1);
    }
}

TEST_F(StagingFixture, AverageShortSequenceNearPaperS1)
{
    // The paper takes s1 = 3 short fetches per DIR instruction; our
    // lowering averages in the same neighbourhood (2..5).
    size_t total = 0;
    for (size_t i = 0; i < prog_.size(); ++i)
        total += lowerStaging(stageAt(i)).size();
    double s1 = static_cast<double>(total) /
                static_cast<double>(prog_.size());
    EXPECT_GE(s1, 2.0);
    EXPECT_LE(s1, 5.0);
}

TEST(Staging, JumpNeedsNoRoutineOrPushes)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("collatz").source);
    auto image = encodeDir(prog, EncodingScheme::Packed);
    bool saw_jmp = false;
    for (size_t i = 0; i < prog.size(); ++i) {
        if (prog.instrs[i].op != Op::JMP)
            continue;
        saw_jmp = true;
        DecodeResult res = image->decodeAt(image->bitAddrOf(i));
        Staging st = stageInstruction(res.instr, *image, i);
        EXPECT_TRUE(st.pushes.empty());
        EXPECT_EQ(st.routine, -1);
        EXPECT_EQ(st.next, NextKind::Imm);
        EXPECT_EQ(st.nextImm, image->bitAddrOf(
            static_cast<size_t>(prog.instrs[i].operands[0])));
    }
    EXPECT_TRUE(saw_jmp);
}

} // anonymous namespace
} // namespace uhm
