/**
 * @file
 * Tests for the paper's core contribution: the dynamic translation
 * buffer (section 5) and the dynamic translator (section 4 / Figure 4).
 */

#include <gtest/gtest.h>

#include "core/dtb.hh"
#include "core/translator.hh"
#include "core/trace_sim.hh"
#include "dir/encoding.hh"
#include "hlr/compiler.hh"
#include "psder/staging.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

std::vector<ShortInstr>
fakeCode(size_t len, int64_t tag)
{
    std::vector<ShortInstr> code;
    for (size_t i = 0; i + 1 < len; ++i)
        code.push_back({SOp::PUSH, SMode::Imm, tag + int64_t(i)});
    code.push_back({SOp::INTERP, SMode::Imm, tag});
    return code;
}

DtbConfig
smallDtb()
{
    DtbConfig cfg;
    cfg.capacityBytes = 4096;
    cfg.unitShortInstrs = 4;
    cfg.assoc = 4;
    return cfg;
}

// ---- lookup / insert -------------------------------------------------------

TEST(Dtb, MissThenHitAfterInsert)
{
    Dtb dtb(smallDtb());
    EXPECT_FALSE(dtb.lookup(100).hit);
    EXPECT_TRUE(dtb.insert(100, fakeCode(3, 7)).retained);
    Dtb::LookupResult lr = dtb.lookup(100);
    ASSERT_TRUE(lr.hit);
    ASSERT_NE(lr.code, nullptr);
    EXPECT_EQ(*lr.code, fakeCode(3, 7));
    EXPECT_EQ(dtb.hits(), 1u);
    EXPECT_EQ(dtb.misses(), 1u);
}

TEST(Dtb, DistinctAddressesDoNotAlias)
{
    Dtb dtb(smallDtb());
    dtb.insert(1, fakeCode(2, 10));
    dtb.insert(2, fakeCode(2, 20));
    EXPECT_EQ(*dtb.lookup(1).code, fakeCode(2, 10));
    EXPECT_EQ(*dtb.lookup(2).code, fakeCode(2, 20));
    EXPECT_FALSE(dtb.lookup(3).hit);
}

TEST(Dtb, GeometryFollowsConfig)
{
    DtbConfig cfg = smallDtb();
    // 4096 bytes / (4 instrs * 2 bytes) = 512 units; 25% overflow ->
    // 384 primary entries in 96 sets of 4.
    Dtb dtb(cfg);
    EXPECT_EQ(dtb.numEntries(), 384u);
    EXPECT_EQ(dtb.numSets(), 96u);
    EXPECT_EQ(dtb.assoc(), 4u);
    EXPECT_EQ(dtb.overflowTotal(), 128u);
    EXPECT_EQ(dtb.overflowFree(), 128u);
}

TEST(Dtb, FullyAssociativeSingleSet)
{
    DtbConfig cfg = smallDtb();
    cfg.assoc = 0;
    Dtb dtb(cfg);
    EXPECT_EQ(dtb.numSets(), 1u);
    EXPECT_EQ(dtb.assoc(), dtb.numEntries());
}

TEST(Dtb, LruEvictionWithinFullyAssociativeSet)
{
    DtbConfig cfg;
    cfg.capacityBytes = 4 * 4 * 2; // exactly 4 units of 4 instrs
    cfg.unitShortInstrs = 4;
    cfg.assoc = 0;
    cfg.allowOverflow = false;
    Dtb dtb(cfg);
    ASSERT_EQ(dtb.numEntries(), 4u);

    for (uint64_t a = 0; a < 4; ++a)
        dtb.insert(a, fakeCode(2, int64_t(a)));
    // Touch 0 so 1 is the LRU entry.
    EXPECT_TRUE(dtb.lookup(0).hit);
    dtb.insert(99, fakeCode(2, 99));
    EXPECT_TRUE(dtb.lookup(0).hit);
    EXPECT_FALSE(dtb.lookup(1).hit); // evicted
    EXPECT_TRUE(dtb.lookup(99).hit);
    EXPECT_GE(dtb.stats().get("dtb_evictions"), 1u);
}

TEST(Dtb, SetMappingIsStable)
{
    Dtb dtb(smallDtb());
    EXPECT_EQ(dtb.setOf(1234), dtb.setOf(1234));
    EXPECT_LT(dtb.setOf(1234), dtb.numSets());
}

// ---- allocation units and the overflow area --------------------------------

TEST(Dtb, LongTranslationConsumesOverflowBlocks)
{
    Dtb dtb(smallDtb());
    uint64_t free_before = dtb.overflowFree();
    // 10 instrs at unit 4 -> 3 units -> 2 overflow blocks.
    EXPECT_TRUE(dtb.insert(5, fakeCode(10, 1)).retained);
    EXPECT_EQ(dtb.overflowFree(), free_before - 2);
    Dtb::LookupResult lr = dtb.lookup(5);
    ASSERT_TRUE(lr.hit);
    EXPECT_EQ(lr.units, 3u);
}

TEST(Dtb, EvictionReleasesOverflowBlocks)
{
    DtbConfig cfg;
    cfg.capacityBytes = 8 * 4 * 2; // 8 units
    cfg.unitShortInstrs = 4;
    cfg.assoc = 0;
    cfg.overflowFraction = 0.5;    // 4 primary, 4 overflow
    Dtb dtb(cfg);
    ASSERT_EQ(dtb.numEntries(), 4u);
    ASSERT_EQ(dtb.overflowTotal(), 4u);

    EXPECT_TRUE(dtb.insert(1, fakeCode(12, 1)).retained); // 3 units: 2 overflow
    EXPECT_EQ(dtb.overflowFree(), 2u);
    // Fill the remaining primary ways.
    dtb.insert(2, fakeCode(2, 2));
    dtb.insert(3, fakeCode(2, 3));
    dtb.insert(4, fakeCode(2, 4));
    // Next insert evicts entry 1 (LRU) and frees its blocks.
    EXPECT_TRUE(dtb.insert(5, fakeCode(2, 5)).retained);
    EXPECT_EQ(dtb.overflowFree(), 4u);
    EXPECT_FALSE(dtb.lookup(1).hit);
}

TEST(Dtb, OverflowExhaustionRejectsButDoesNotBreak)
{
    DtbConfig cfg;
    cfg.capacityBytes = 8 * 4 * 2;
    cfg.unitShortInstrs = 4;
    cfg.assoc = 0;
    cfg.overflowFraction = 0.25; // 6 primary, 2 overflow
    Dtb dtb(cfg);
    ASSERT_EQ(dtb.overflowTotal(), 2u);

    EXPECT_TRUE(dtb.insert(1, fakeCode(12, 1)).retained);  // takes both blocks
    EXPECT_FALSE(dtb.insert(2, fakeCode(12, 2)).retained); // rejected
    EXPECT_GE(dtb.stats().get("dtb_rejects"), 1u);
    EXPECT_FALSE(dtb.lookup(2).hit);
    // Short translations still insert fine.
    EXPECT_TRUE(dtb.insert(3, fakeCode(3, 3)).retained);
}

TEST(Dtb, RejectedInsertPreservesResidentVictim)
{
    // Regression: insert used to evict the replacement victim *before*
    // discovering the overflow area could not hold the new translation,
    // destroying a resident (possibly hot) entry and then rejecting
    // anyway. The reservation must come first.
    DtbConfig cfg;
    cfg.capacityBytes = 8 * 4 * 2;
    cfg.unitShortInstrs = 4;
    cfg.assoc = 0;
    cfg.overflowFraction = 0.25; // 6 primary, 2 overflow
    Dtb dtb(cfg);
    ASSERT_EQ(dtb.numEntries(), 6u);
    ASSERT_EQ(dtb.overflowTotal(), 2u);

    // Entry 1 takes both overflow blocks; 2..6 fill the primaries.
    ASSERT_TRUE(dtb.insert(1, fakeCode(12, 1)).retained);
    for (uint64_t a = 2; a <= 6; ++a)
        ASSERT_TRUE(dtb.insert(a, fakeCode(2, int64_t(a))).retained);
    ASSERT_EQ(dtb.overflowFree(), 0u);

    // A 16-instr translation needs 3 overflow blocks. Even evicting the
    // LRU victim (entry 1, which would release only 2) cannot supply
    // them, so the insert must reject WITHOUT destroying the victim.
    Dtb::InsertOutcome out = dtb.insert(7, fakeCode(16, 7));
    EXPECT_FALSE(out.retained);
    EXPECT_FALSE(out.evicted);
    EXPECT_EQ(out.unitsNeeded, 4u);
    EXPECT_GE(dtb.stats().get("dtb_rejects"), 1u);
    EXPECT_EQ(dtb.stats().get("dtb_evictions"), 0u);
    EXPECT_EQ(dtb.overflowFree(), 0u);

    // Every resident entry — the would-be victim included — still hits.
    for (uint64_t a = 1; a <= 6; ++a)
        EXPECT_TRUE(dtb.lookup(a).hit) << "entry " << a;
    EXPECT_FALSE(dtb.lookup(7).hit);
}

TEST(Dtb, EvictionCountsVictimBlocksTowardOverflow)
{
    // The flip side of the reservation fix: the blocks the victim would
    // release count toward the overflow check, so an insert that fits
    // only thanks to the eviction still succeeds.
    DtbConfig cfg;
    cfg.capacityBytes = 8 * 4 * 2;
    cfg.unitShortInstrs = 4;
    cfg.assoc = 0;
    cfg.overflowFraction = 0.5; // 4 primary, 4 overflow
    Dtb dtb(cfg);
    ASSERT_EQ(dtb.numEntries(), 4u);
    ASSERT_EQ(dtb.overflowTotal(), 4u);

    // A holds all 4 overflow blocks; B, C, D fill the primaries and are
    // touched so A is the LRU victim.
    ASSERT_TRUE(dtb.insert(1, fakeCode(20, 1)).retained);
    for (uint64_t a = 2; a <= 4; ++a)
        ASSERT_TRUE(dtb.insert(a, fakeCode(2, int64_t(a))).retained);
    for (uint64_t a = 2; a <= 4; ++a)
        ASSERT_TRUE(dtb.lookup(a).hit);
    ASSERT_EQ(dtb.overflowFree(), 0u);

    // E needs 2 overflow blocks; none are free, but evicting A releases
    // 4, so the insert succeeds.
    Dtb::InsertOutcome out = dtb.insert(5, fakeCode(12, 5));
    EXPECT_TRUE(out.retained);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimTag, 1u);
    EXPECT_EQ(out.unitsNeeded, 3u);
    EXPECT_FALSE(dtb.lookup(1).hit);
    EXPECT_TRUE(dtb.lookup(5).hit);
    EXPECT_EQ(dtb.overflowFree(), 2u);
}

TEST(Dtb, FixedAllocationRejectsOversizedTranslations)
{
    DtbConfig cfg = smallDtb();
    cfg.allowOverflow = false;
    Dtb dtb(cfg);
    EXPECT_FALSE(dtb.insert(1, fakeCode(5, 1)).retained);
    EXPECT_TRUE(dtb.insert(1, fakeCode(4, 1)).retained);
}

TEST(Dtb, InvalidateAllEmptiesBufferAndRestoresOverflow)
{
    Dtb dtb(smallDtb());
    dtb.insert(1, fakeCode(10, 1));
    dtb.insert(2, fakeCode(2, 2));
    dtb.invalidateAll();
    EXPECT_FALSE(dtb.lookup(1).hit);
    EXPECT_FALSE(dtb.lookup(2).hit);
    EXPECT_EQ(dtb.overflowFree(), dtb.overflowTotal());
}

TEST(Dtb, HitRatioTracksAccessMix)
{
    Dtb dtb(smallDtb());
    dtb.insert(1, fakeCode(2, 1));
    dtb.resetStats();
    for (int i = 0; i < 8; ++i)
        dtb.lookup(1);
    dtb.lookup(999);
    dtb.lookup(998);
    EXPECT_NEAR(dtb.hitRatio(), 0.8, 1e-12);
}

// ---- dynamic translator ----------------------------------------------------

class TranslatorFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = hlr::compileSource(
            workload::sampleByName("qsort").source);
        image_ = encodeDir(prog_, EncodingScheme::Huffman);
    }

    DirProgram prog_;
    std::unique_ptr<EncodedDir> image_;
};

TEST_F(TranslatorFixture, TranslationMatchesStagingLowering)
{
    DynamicTranslator translator(*image_);
    for (size_t i = 0; i < prog_.size(); ++i) {
        uint64_t addr = image_->bitAddrOf(i);
        Translation tr = translator.translate(addr);
        DecodeResult res = image_->decodeAt(addr);
        std::vector<ShortInstr> expected =
            lowerStaging(stageInstruction(res.instr, *image_, i));
        EXPECT_EQ(tr.code, expected) << "instr " << i;
        EXPECT_EQ(tr.genSteps, expected.size());
        EXPECT_EQ(tr.bits, res.nextBitAddr - addr);
        EXPECT_GT(tr.decodeCost.total(), 0u);
    }
}

TEST_F(TranslatorFixture, MappingIsAlmostOneToOne)
{
    // "Since the mapping from DIR to PSDER is almost one-to-one, the
    // added complexity is not significant": each DIR instruction yields
    // a handful of short instructions, never dozens.
    DynamicTranslator translator(*image_);
    for (size_t i = 0; i < prog_.size(); ++i) {
        Translation tr = translator.translate(image_->bitAddrOf(i));
        EXPECT_GE(tr.code.size(), 1u);
        EXPECT_LE(tr.code.size(), 6u);
    }
}

TEST_F(TranslatorFixture, TranslationsRoundTripThroughDtb)
{
    DynamicTranslator translator(*image_);
    Dtb dtb(smallDtb());
    for (size_t i = 0; i < std::min<size_t>(prog_.size(), 50); ++i) {
        uint64_t addr = image_->bitAddrOf(i);
        Translation tr = translator.translate(addr);
        ASSERT_TRUE(dtb.insert(addr, tr.code).retained);
        Dtb::LookupResult lr = dtb.lookup(addr);
        ASSERT_TRUE(lr.hit);
        EXPECT_EQ(*lr.code, tr.code);
    }
}

// ---- trace-driven DTB simulation -------------------------------------------

class TraceSimFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        workload::SyntheticConfig wcfg;
        wcfg.numLoops = 8;
        wcfg.bodyInstrs = 40;
        wcfg.iterations = 6;
        wcfg.outerRepeats = 4;
        wcfg.seed = 61;
        prog_ = workload::generateSynthetic(wcfg);
        image_ = encodeDir(prog_, EncodingScheme::Huffman);

        MachineConfig cfg;
        cfg.kind = MachineKind::Dtb;
        cfg.captureAddressTrace = true;
        Machine machine(*image_, cfg);
        run_ = machine.run();
        translator_ = std::make_unique<DynamicTranslator>(*image_);
    }

    std::function<unsigned(uint64_t)>
    sizeOf()
    {
        return [this](uint64_t addr) {
            return static_cast<unsigned>(
                translator_->translate(addr).code.size());
        };
    }

    DirProgram prog_;
    std::unique_ptr<EncodedDir> image_;
    std::unique_ptr<DynamicTranslator> translator_;
    RunResult run_;
};

TEST_F(TraceSimFixture, TraceLengthMatchesInstructionCount)
{
    EXPECT_EQ(run_.addressTrace.size(), run_.dirInstrs);
    EXPECT_EQ(run_.addressTrace.front(), image_->entryBitAddr());
}

TEST_F(TraceSimFixture, ReplayReproducesFullSimulationExactly)
{
    // Same DTB configuration as the machine used: identical hit/miss
    // counts, not just close ones.
    MachineConfig cfg;
    TraceSimResult replay =
        simulateDtbTrace(run_.addressTrace, cfg.dtb, sizeOf());
    EXPECT_EQ(replay.hits, run_.stats.get("dtb_hits"));
    EXPECT_EQ(replay.misses, run_.stats.get("dtb_misses"));
    EXPECT_EQ(replay.rejects, run_.stats.get("dtb_rejects"));
}

TEST_F(TraceSimFixture, ReplayMatchesAlternativeConfigurations)
{
    // Cross-check several other configurations against full simulation.
    for (auto [cap, assoc, unit] :
         std::vector<std::tuple<uint64_t, unsigned, unsigned>>{
             {1024, 2, 4}, {2048, 0, 3}, {512, 4, 2}}) {
        MachineConfig cfg;
        cfg.kind = MachineKind::Dtb;
        cfg.dtb.capacityBytes = cap;
        cfg.dtb.assoc = assoc;
        cfg.dtb.unitShortInstrs = unit;
        Machine machine(*image_, cfg);
        RunResult full = machine.run();
        TraceSimResult replay =
            simulateDtbTrace(run_.addressTrace, cfg.dtb, sizeOf());
        EXPECT_EQ(replay.hits, full.stats.get("dtb_hits"))
            << cap << "/" << assoc << "/" << unit;
        EXPECT_EQ(replay.misses, full.stats.get("dtb_misses"));
    }
}

TEST_F(TraceSimFixture, CapacitySweepIsMonotone)
{
    double prev = -1.0;
    for (uint64_t cap : {256u, 512u, 1024u, 4096u, 16384u}) {
        DtbConfig cfg;
        cfg.capacityBytes = cap;
        TraceSimResult r =
            simulateDtbTrace(run_.addressTrace, cfg, sizeOf());
        EXPECT_GE(r.hitRatio() + 1e-12, prev) << cap;
        prev = r.hitRatio();
    }
}

TEST(TraceSim, EmptyTrace)
{
    DtbConfig cfg;
    TraceSimResult r = simulateDtbTrace({}, cfg, [](uint64_t) {
        return 2u;
    });
    EXPECT_EQ(r.hits, 0u);
    EXPECT_EQ(r.misses, 0u);
    EXPECT_DOUBLE_EQ(r.hitRatio(), 1.0);
}

} // anonymous namespace
} // namespace uhm
