/**
 * @file
 * Fast-run dispatch (--dispatch=threaded): the threaded engine is a
 * host-side implementation detail, so every simulated observable must
 * be byte-identical to the reference switch interpreter — across
 * machine kinds, encoders, the interval sampler, batch sweeps, and the
 * multi-tenant scheduler — and the per-site inline caches must be
 * invalidated by the existing DTB flush and eviction paths.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "hlr/compiler.hh"
#include "sched/scheduler.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

const std::vector<MachineKind> kAllKinds = {
    MachineKind::Conventional, MachineKind::Cached, MachineKind::Dtb,
    MachineKind::Dtb2,         MachineKind::Tiered,
};

/** Every simulated observable of two runs must agree exactly. */
void
expectIdentical(const RunResult &sw, const RunResult &th,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(sw.output, th.output);
    EXPECT_EQ(sw.cycles, th.cycles);
    EXPECT_EQ(sw.dirInstrs, th.dirInstrs);
    EXPECT_EQ(sw.breakdown.fetch, th.breakdown.fetch);
    EXPECT_EQ(sw.breakdown.decode, th.breakdown.decode);
    EXPECT_EQ(sw.breakdown.stage, th.breakdown.stage);
    EXPECT_EQ(sw.breakdown.dispatch, th.breakdown.dispatch);
    EXPECT_EQ(sw.breakdown.semantic, th.breakdown.semantic);
    EXPECT_EQ(sw.breakdown.translate, th.breakdown.translate);
    EXPECT_EQ(sw.breakdown.translate2, th.breakdown.translate2);
    EXPECT_EQ(sw.stats.toString(), th.stats.toString());
    EXPECT_EQ(sw.counters, th.counters);
    EXPECT_EQ(sw.histograms, th.histograms);
    EXPECT_EQ(sw.samples, th.samples);
    EXPECT_EQ(sw.opcodeCounts, th.opcodeCounts);
    EXPECT_EQ(sw.dtbHitRatio, th.dtbHitRatio);
    EXPECT_EQ(sw.dtbL1HitRatio, th.dtbL1HitRatio);
    EXPECT_EQ(sw.cacheHitRatio, th.cacheHitRatio);
    EXPECT_EQ(sw.traceHitRatio, th.traceHitRatio);
    EXPECT_EQ(sw.traceCoverage, th.traceCoverage);
    EXPECT_EQ(sw.traceMeanIterLen, th.traceMeanIterLen);
}

/** Run @p prog under both dispatch modes and demand identity. */
void
compareModes(const DirProgram &prog, EncodingScheme scheme,
             MachineConfig cfg, const std::vector<int64_t> &input,
             const std::string &what)
{
    cfg.dispatch = DispatchMode::Switch;
    RunResult sw = runProgram(prog, scheme, cfg, input);
    cfg.dispatch = DispatchMode::Threaded;
    RunResult th = runProgram(prog, scheme, cfg, input);
    expectIdentical(sw, th, what);
}

TEST(DispatchIdentity, SamplesAcrossKindsAndEncoders)
{
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        for (MachineKind kind : kAllKinds) {
            for (EncodingScheme scheme : allEncodingSchemes()) {
                MachineConfig cfg;
                cfg.kind = kind;
                compareModes(prog, scheme, cfg, sample.input,
                             std::string(sample.name) + "/" +
                                 machineKindName(kind) + "/" +
                                 encodingName(scheme));
            }
        }
    }
}

TEST(DispatchIdentity, SyntheticSemworkAcrossKinds)
{
    // Semantics-heavy spins exercise the fused SEMWORK closed form.
    workload::SyntheticConfig scfg;
    scfg.numLoops = 3;
    scfg.bodyInstrs = 20;
    scfg.iterations = 12;
    scfg.semworkDensity = 0.3;
    scfg.semworkWeight = 37;
    scfg.seed = 11;
    DirProgram prog = workload::generateSynthetic(scfg);
    for (MachineKind kind : kAllKinds) {
        MachineConfig cfg;
        cfg.kind = kind;
        compareModes(prog, EncodingScheme::Huffman, cfg, {},
                     std::string("semwork/") + machineKindName(kind));
    }
}

TEST(DispatchIdentity, IntervalSamplerSeries)
{
    // The sampler drains pending work at every sample boundary; the
    // batched attribution must produce the same series, sample by
    // sample.
    DirProgram prog = hlr::compileSource(
        "program t; var i, s; begin i := 500; s := 0; "
        "while i > 0 do s := s + i; i := i - 1; od; write s; end.");
    for (MachineKind kind :
         {MachineKind::Dtb, MachineKind::Tiered}) {
        MachineConfig cfg;
        cfg.kind = kind;
        cfg.sampleIntervalCycles = 997; // prime: misaligned boundaries
        compareModes(prog, EncodingScheme::Packed, cfg, {},
                     std::string("sampler/") + machineKindName(kind));
    }
}

TEST(DispatchIdentity, SweepJsonlByteIdentical)
{
    auto makePoints = [](DispatchMode mode) {
        std::vector<bench::SweepPoint> points;
        for (MachineKind kind : kAllKinds) {
            bench::SweepPoint pt;
            pt.label = machineKindName(kind);
            pt.program = hlr::compileSource(
                "program t; var i, s; begin i := 200; s := 1; "
                "while i > 0 do s := s + 2; i := i - 1; od; "
                "write s; end.");
            pt.scheme = EncodingScheme::Huffman;
            pt.config.kind = kind;
            pt.config.dispatch = mode;
            points.push_back(std::move(pt));
        }
        return points;
    };
    bench::SweepRunner runner(2);
    std::string sw =
        bench::runSweep(runner, makePoints(DispatchMode::Switch)).jsonl;
    std::string th =
        bench::runSweep(runner,
                        makePoints(DispatchMode::Threaded)).jsonl;
    EXPECT_EQ(sw, th);
}

/** Deterministic serialization of a scheduler run, for byte-compares. */
std::string
serializeSched(const sched::SchedResult &r)
{
    std::ostringstream os;
    for (const auto &kv : r.counters)
        os << kv.first << "=" << kv.second << "\n";
    for (const auto &kv : r.histograms)
        os << kv.first << " n=" << kv.second.count
           << " min=" << kv.second.min << " max=" << kv.second.max
           << "\n";
    for (const sched::TenantResult &t : r.tenants) {
        os << t.name << ":";
        for (int64_t v : t.run.output)
            os << " " << v;
        os << "\n";
    }
    return os.str();
}

TEST(DispatchIdentity, MultiTenantSchedulerByteIdentical)
{
    // FlushOnSwitch flushes the shared DTB (and trace anchors) at
    // every context switch, mid-run from the tenants' point of view —
    // the inline caches must die with the entries they point at.
    const char *kLoop =
        "program t; var i, s; begin i := 400; s := 0; "
        "while i > 0 do s := s + i; i := i - 1; od; write s; end.";
    for (MachineKind kind : {MachineKind::Dtb, MachineKind::Tiered}) {
        for (sched::Policy policy :
             {sched::Policy::RoundRobin, sched::Policy::Priority}) {
            for (sched::SwitchMode mode :
                 {sched::SwitchMode::FlushOnSwitch,
                  sched::SwitchMode::TagAndShare}) {
                for (size_t tenants : {1u, 8u, 64u}) {
                    sched::SchedConfig sc;
                    sc.policy = policy;
                    sc.switchMode = mode;
                    sc.quantumCycles = 1000;
                    sc.machine.kind = kind;
                    std::vector<sched::TenantSpec> specs;
                    for (size_t i = 0; i < tenants; ++i) {
                        sched::TenantSpec spec;
                        spec.name = "t" + std::to_string(i);
                        spec.program = hlr::compileSource(kLoop);
                        spec.priority =
                            1 + static_cast<uint32_t>(i % 3);
                        specs.push_back(std::move(spec));
                    }
                    sc.machine.dispatch = DispatchMode::Switch;
                    std::string sw =
                        serializeSched(runScheduled(sc, specs));
                    sc.machine.dispatch = DispatchMode::Threaded;
                    std::string th =
                        serializeSched(runScheduled(sc, specs));
                    SCOPED_TRACE(std::string(machineKindName(kind)) +
                                 "/" + policyName(policy) + "/" +
                                 switchModeName(mode) + "/" +
                                 std::to_string(tenants));
                    EXPECT_EQ(sw, th);
                }
            }
        }
    }
}

TEST(InlineCache, EvictionChurnStaysIdentical)
{
    // A DTB small enough that the working set churns through every
    // set: each eviction must invalidate any inline cache pointing at
    // the victim slot, or the threaded engine dispatches stale code.
    workload::SyntheticConfig scfg;
    scfg.numLoops = 6;
    scfg.bodyInstrs = 40;
    scfg.iterations = 10;
    scfg.outerRepeats = 3; // revisit evicted code: stale ICs would hit
    scfg.semworkDensity = 0.1;
    scfg.semworkWeight = 5;
    scfg.seed = 23;
    DirProgram prog = workload::generateSynthetic(scfg);
    for (MachineKind kind : {MachineKind::Dtb, MachineKind::Tiered}) {
        MachineConfig cfg;
        cfg.kind = kind;
        cfg.dtb.capacityBytes = 256;
        cfg.dtb.assoc = 2;
        compareModes(prog, EncodingScheme::Huffman, cfg, {},
                     std::string("tiny-dtb/") + machineKindName(kind));
    }
}

TEST(InlineCache, FlushDtbInvalidatesBetweenRuns)
{
    // flushDtb() bumps the generation; a rerun on the same machine
    // must behave exactly like a rerun without the flush (beginRun
    // already cold-starts the DTB) — in particular no inline cache
    // may survive into the flushed generation.
    DirProgram prog = hlr::compileSource(
        "program t; var i, s; begin i := 300; s := 0; "
        "while i > 0 do s := s + 3; i := i - 1; od; write s; end.");
    auto img = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    cfg.dispatch = DispatchMode::Threaded;

    Machine flushed(*img, cfg);
    RunResult first = flushed.run({});
    flushed.flushDtb();
    RunResult second = flushed.run({});
    expectIdentical(first, second, "pre-flush vs post-flush rerun");

    Machine fresh(*img, cfg);
    expectIdentical(fresh.run({}), second, "fresh vs post-flush");
}

} // anonymous namespace
} // namespace uhm
