/**
 * @file
 * Integration tests: cross-module properties that tie the whole system
 * to the paper's claims — measured-vs-model agreement, end-to-end shape
 * assertions, and randomized differential sweeps over synthetic
 * workloads.
 */

#include <gtest/gtest.h>

#include "analytic/model.hh"
#include "dir/asm.hh"
#include "dir/fusion.hh"
#include "hlr/compiler.hh"
#include "hlr/interp.hh"
#include "hlr/parser.hh"
#include "psder/routines.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

MachineConfig
configFor(MachineKind kind)
{
    MachineConfig cfg;
    cfg.kind = kind;
    return cfg;
}

/** Run @p prog on every machine kind, returning the results. */
std::vector<RunResult>
runAllKinds(const DirProgram &prog, EncodingScheme scheme,
            const std::vector<int64_t> &input = {})
{
    std::vector<RunResult> results;
    auto image = encodeDir(prog, scheme);
    for (MachineKind kind : {MachineKind::Conventional,
                             MachineKind::Cached, MachineKind::Dtb,
                             MachineKind::Dtb2, MachineKind::Tiered}) {
        Machine machine(*image, configFor(kind));
        results.push_back(machine.run(input));
    }
    return results;
}

// ---- measured vs analytic --------------------------------------------------

TEST(ModelAgreement, MeasuredT2WithinModelBallpark)
{
    // Plugging the *measured* parameters (d, x, g, hD, hc, s1, s2) of a
    // simulation into the section-7 T2 expression must land near the
    // simulated average interpretation time. The model ignores staging
    // and per-hit dispatch subtleties, so agree to 25%.
    workload::SyntheticConfig wcfg;
    wcfg.numLoops = 8;
    wcfg.bodyInstrs = 40;
    wcfg.iterations = 10;
    wcfg.outerRepeats = 5;
    wcfg.seed = 31;
    DirProgram prog = workload::generateSynthetic(wcfg);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    Machine conv(*image, configFor(MachineKind::Conventional));
    Machine dtb(*image, configFor(MachineKind::Dtb));
    RunResult r1 = conv.run();
    RunResult r2 = dtb.run();

    analytic::ModelParams p;
    p.d = r1.measuredD;
    p.x = r1.measuredX;
    p.g = r2.measuredG;
    p.hD = r2.dtbHitRatio;
    p.s1 = static_cast<double>(r2.stats.get("short_instrs")) /
           static_cast<double>(r2.dirInstrs);
    p.s2 = static_cast<double>(r1.stats.get("dir_fetch_refs")) /
           static_cast<double>(r1.dirInstrs);

    double predicted_t2 = analytic::t2(p);
    double measured_t2 = r2.avgInterpTime();
    EXPECT_NEAR(predicted_t2, measured_t2, 0.25 * measured_t2)
        << "model " << predicted_t2 << " vs sim " << measured_t2;

    double predicted_t1 = analytic::t1(p);
    double measured_t1 = r1.avgInterpTime();
    EXPECT_NEAR(predicted_t1, measured_t1, 0.25 * measured_t1);
}

TEST(ModelAgreement, MeasuredT4WithinModelBallpark)
{
    // Same contract as the T2 test, one tier up: the measured tier
    // parameters (hT, nT, s1T, g2, cT) plugged into the section-7-style
    // T4 expression must land near the simulated Tiered average
    // interpretation time, to the same 25% tolerance.
    workload::SyntheticConfig wcfg;
    wcfg.numLoops = 8;
    wcfg.bodyInstrs = 40;
    wcfg.iterations = 10;
    wcfg.outerRepeats = 5;
    wcfg.seed = 31;
    DirProgram prog = workload::generateSynthetic(wcfg);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    Machine conv(*image, configFor(MachineKind::Conventional));
    Machine tiered(*image, configFor(MachineKind::Tiered));
    RunResult r1 = conv.run();
    RunResult r4 = tiered.run();

    double trace_dir =
        static_cast<double>(r4.stats.get("trace_dir_instrs"));
    double trace_short =
        static_cast<double>(r4.stats.get("trace_short_instrs"));
    double dir_instrs = static_cast<double>(r4.dirInstrs);
    double compiled = static_cast<double>(
        r4.counters.at("tier.compiled_short_instrs"));
    ASSERT_GT(trace_dir, 0.0) << "workload never formed a trace";

    analytic::ModelParams p;
    p.d = r1.measuredD;
    p.x = r1.measuredX;
    p.g = r4.measuredG;
    p.hD = r4.dtbHitRatio;
    p.s2 = static_cast<double>(r1.stats.get("dir_fetch_refs")) /
           static_cast<double>(r1.dirInstrs);
    // Cold instructions' short fetches per instruction: the aggregate
    // s1 minus the trace-resident share.
    p.s1 = (static_cast<double>(r4.stats.get("short_instrs")) -
            trace_short) / (dir_instrs - trace_dir);
    p.hT = r4.traceCoverage;
    p.nT = r4.traceMeanIterLen;
    p.s1T = trace_short / trace_dir;
    p.g2 = r4.measuredG2;
    p.cT = compiled / dir_instrs;

    double predicted = analytic::t4(p);
    double measured = r4.avgInterpTime();
    EXPECT_NEAR(predicted, measured, 0.25 * measured)
        << "model " << predicted << " vs sim " << measured;
}

TEST(ModelAgreement, F2SignAndTrendMatchSimulation)
{
    // Raising decode cost must raise both the model's and the
    // simulator's F2.
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("collatz").source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    double prev_f2 = -1e9;
    for (uint64_t extra : {0u, 10u, 25u}) {
        MachineConfig c1 = configFor(MachineKind::Conventional);
        MachineConfig c2 = configFor(MachineKind::Dtb);
        c1.costs.extraDecodeCycles = extra;
        c2.costs.extraDecodeCycles = extra;
        Machine conv(*image, c1);
        Machine dtb(*image, c2);
        double t1 = conv.run().avgInterpTime();
        double t2 = dtb.run().avgInterpTime();
        double f2 = (t1 - t2) / t2 * 100.0;
        EXPECT_GT(f2, 0.0);
        EXPECT_GT(f2, prev_f2);
        prev_f2 = f2;
    }
}

// ---- end-to-end shape assertions -------------------------------------------

TEST(Shapes, DtbBeatsConventionalOnEveryLoopySample)
{
    for (const char *name : {"sieve", "fib", "qsort", "matmul", "queens",
                             "collatz", "power", "gcd"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram prog = hlr::compileSource(sample.source);
        auto image = encodeDir(prog, EncodingScheme::Huffman);
        Machine conv(*image, configFor(MachineKind::Conventional));
        Machine dtb(*image, configFor(MachineKind::Dtb));
        uint64_t t1 = conv.run(sample.input).cycles;
        uint64_t t2 = dtb.run(sample.input).cycles;
        EXPECT_LT(t2, t1) << name;
    }
}

TEST(Shapes, HitRatioMonotoneInCapacity)
{
    workload::SyntheticConfig wcfg;
    wcfg.numLoops = 10;
    wcfg.bodyInstrs = 45;
    wcfg.iterations = 8;
    wcfg.outerRepeats = 6;
    wcfg.seed = 17;
    DirProgram prog = workload::generateSynthetic(wcfg);

    double prev = -1.0;
    for (uint64_t cap : {256u, 1024u, 4096u, 16384u}) {
        MachineConfig cfg = configFor(MachineKind::Dtb);
        cfg.dtb.capacityBytes = cap;
        RunResult r = runProgram(prog, EncodingScheme::Huffman, cfg);
        EXPECT_GE(r.dtbHitRatio + 1e-12, prev) << cap;
        prev = r.dtbHitRatio;
    }
    EXPECT_GT(prev, 0.9);
}

TEST(Shapes, Degree4NearlyFullAssociativity)
{
    workload::SyntheticConfig wcfg;
    wcfg.numLoops = 10;
    wcfg.bodyInstrs = 45;
    wcfg.iterations = 8;
    wcfg.outerRepeats = 6;
    wcfg.seed = 23;
    DirProgram prog = workload::generateSynthetic(wcfg);

    auto hit_ratio = [&](unsigned assoc) {
        MachineConfig cfg = configFor(MachineKind::Dtb);
        cfg.dtb.assoc = assoc;
        return runProgram(prog, EncodingScheme::Huffman, cfg).dtbHitRatio;
    };
    double h4 = hit_ratio(4);
    double hfull = hit_ratio(0);
    EXPECT_NEAR(h4, hfull, 0.03);
    EXPECT_LT(hit_ratio(1), hfull + 1e-12);
}

TEST(Shapes, EncodingSizeMonotoneOverAllSamples)
{
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        auto expanded = encodeDir(prog, EncodingScheme::Expanded);
        auto packed = encodeDir(prog, EncodingScheme::Packed);
        auto contextual = encodeDir(prog, EncodingScheme::Contextual);
        auto huffman = encodeDir(prog, EncodingScheme::Huffman);
        auto quantized = encodeDir(prog, EncodingScheme::Quantized);
        EXPECT_LT(packed->bitSize(), expanded->bitSize()) << sample.name;
        EXPECT_LE(contextual->bitSize(), packed->bitSize())
            << sample.name;
        EXPECT_LT(huffman->bitSize(), packed->bitSize()) << sample.name;
        // Quantization costs a little space over optimal Huffman but
        // must stay below packed.
        EXPECT_GE(quantized->bitSize(), huffman->bitSize())
            << sample.name;
        EXPECT_LT(quantized->bitSize(), packed->bitSize()) << sample.name;
    }
}

TEST(Shapes, QuantizedDecodesCheaperThanHuffman)
{
    // The whole point of restricting lengths: fewer decode operations.
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("sieve").source);
    auto huffman = encodeDir(prog, EncodingScheme::Huffman);
    auto quantized = encodeDir(prog, EncodingScheme::Quantized);
    uint64_t huff_ops = 0, quant_ops = 0;
    for (size_t i = 0; i < prog.size(); ++i) {
        huff_ops += huffman->decodeAt(huffman->bitAddrOf(i)).cost.total();
        quant_ops +=
            quantized->decodeAt(quantized->bitAddrOf(i)).cost.total();
    }
    EXPECT_LT(quant_ops, huff_ops);
}

// ---- randomized differential sweeps ----------------------------------------

class SyntheticFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SyntheticFuzz, AllMachinesAllEncodingsAgree)
{
    workload::SyntheticConfig wcfg;
    uint64_t seed = GetParam();
    wcfg.seed = seed;
    wcfg.numLoops = 2 + seed % 5;
    wcfg.bodyInstrs = 15 + seed % 40;
    wcfg.iterations = 5 + seed % 20;
    wcfg.semworkDensity = 0.1;
    wcfg.semworkWeight = 3;
    DirProgram prog = workload::generateSynthetic(wcfg);

    std::vector<int64_t> reference;
    bool first = true;
    for (EncodingScheme scheme : allEncodingSchemes()) {
        for (RunResult &r : runAllKinds(prog, scheme)) {
            if (first) {
                reference = r.output;
                first = false;
            } else {
                ASSERT_EQ(r.output, reference)
                    << "seed " << seed << " scheme "
                    << encodingName(scheme);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticFuzz,
                         ::testing::Range<uint64_t>(100, 120));

class SampleSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(SampleSweep, HlrDirAndAllMachinesAgreeUnderStressedConfigs)
{
    // Tiny DTB, tiny cache, odd unit sizes: correctness must be
    // configuration-independent.
    const auto &sample = workload::sampleByName(GetParam());
    hlr::AstProgram ast = hlr::parse(sample.source);
    std::vector<int64_t> reference =
        hlr::interpretHlr(ast, sample.input).output;
    DirProgram prog = hlr::compile(ast);
    auto image = encodeDir(prog, EncodingScheme::PairHuffman);

    MachineConfig stressed = configFor(MachineKind::Dtb);
    stressed.dtb.capacityBytes = 128;
    stressed.dtb.unitShortInstrs = 2;
    stressed.dtb.assoc = 2;
    Machine machine(*image, stressed);
    EXPECT_EQ(machine.run(sample.input).output, reference);

    MachineConfig tiny_cache = configFor(MachineKind::Cached);
    tiny_cache.icache.capacityBytes = 32;
    Machine cached(*image, tiny_cache);
    EXPECT_EQ(cached.run(sample.input).output, reference);
}

INSTANTIATE_TEST_SUITE_P(Samples, SampleSweep,
                         ::testing::Values("sieve", "fib", "ack", "gcd",
                                           "collatz", "power", "matmul",
                                           "qsort", "queens", "nest",
                                           "echo"));

// ---- level-1 residency budget (Figure 1 / section 3.3) ---------------------

TEST(Level1Budget, InterpreterRoutinesAndDtbFitTheFastLevel)
{
    // "The size of the semantic routines and interpreter is important
    // since they must fit into the faster, smaller level if high speed
    // interpretation is to be achieved."
    MachineLayout layout;
    RoutineLibrary lib(layout);
    uint64_t level1_bits = layout.level1Words * 64;

    for (const char *name : {"sieve", "qsort", "queens"}) {
        DirProgram prog = hlr::compileSource(
            workload::sampleByName(name).source);
        for (EncodingScheme scheme : allEncodingSchemes()) {
            auto image = encodeDir(prog, scheme);
            DtbConfig dtb;
            uint64_t resident =
                lib.totalSizeWords() * 64 +      // semantic routines
                image->metadataBits() +          // decoder tables
                dtb.capacityBytes * 8 +          // DTB buffer array
                (layout.stackWords +             // operand stack
                 layout.maxDepth + 1) * 64;      // display
            EXPECT_LT(resident, level1_bits)
                << name << "/" << encodingName(scheme);
        }
    }
}

// ---- determinism of encodings ----------------------------------------------

TEST(Determinism, EncodingIsByteStable)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("qsort").source);
    for (EncodingScheme scheme : allEncodingSchemes()) {
        auto a = encodeDir(prog, scheme);
        auto b = encodeDir(prog, scheme);
        ASSERT_EQ(a->bitSize(), b->bitSize()) << encodingName(scheme);
        for (size_t i = 0; i < prog.size(); ++i) {
            EXPECT_EQ(a->bitAddrOf(i), b->bitAddrOf(i));
            DecodeResult ra = a->decodeAt(a->bitAddrOf(i));
            DecodeResult rb = b->decodeAt(b->bitAddrOf(i));
            EXPECT_EQ(ra.instr, rb.instr);
        }
    }
}

// ---- fused programs survive the assembler ----------------------------------

TEST(FusedAsm, RaisedProgramsRoundTripThroughAssembly)
{
    DirProgram prog = raiseSemanticLevel(hlr::compileSource(
        workload::sampleByName("sieve").source));
    DirProgram reparsed = parseDirAssembly(toDirAssembly(prog));
    ASSERT_EQ(reparsed.size(), prog.size());
    for (size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(reparsed.instrs[i], prog.instrs[i]);

    MachineConfig cfg = configFor(MachineKind::Dtb);
    EXPECT_EQ(runProgram(reparsed, EncodingScheme::Huffman, cfg).output,
              std::vector<int64_t>{168});
}

// ---- amortization (the Figure 4 crossover) ---------------------------------

TEST(Amortization, DtbCrossoverWithReuse)
{
    auto run_loop = [&](int iters, MachineKind kind) {
        std::string src = "program t; var i, s; begin i := " +
            std::to_string(iters) +
            "; s := 0; while i > 0 do s := s + i; i := i - 1; od; "
            "write s; end.";
        DirProgram prog = hlr::compileSource(src);
        return runProgram(prog, EncodingScheme::Huffman,
                          configFor(kind));
    };
    // One iteration: translation cost with no reuse; the DTB loses.
    EXPECT_GT(run_loop(1, MachineKind::Dtb).avgInterpTime(),
              run_loop(1, MachineKind::Conventional).avgInterpTime());
    // Many iterations: binding amortized; the DTB wins decisively.
    EXPECT_LT(run_loop(500, MachineKind::Dtb).avgInterpTime(),
              0.75 * run_loop(500, MachineKind::Conventional)
                  .avgInterpTime());
}

} // anonymous namespace
} // namespace uhm
