/**
 * @file
 * Tests for the observability layer: the counters registry, the typed
 * event tracer, the profile reports, and their integration with the
 * machine — the registry view must agree exactly with the legacy
 * accessors and RunResult statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "hlr/compiler.hh"
#include "obs/counter.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

namespace uhm
{
namespace
{

// ---- counters and the registry ---------------------------------------------

TEST(ObsCounter, IncrementAndReset)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    c.add(2);
    EXPECT_EQ(c.value(), 7u);
    EXPECT_EQ(static_cast<uint64_t>(c), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, LiveViewOverRegisteredCounters)
{
    obs::Counter hits, misses;
    obs::Registry reg;
    reg.add("dtb.hits", hits);
    reg.add("dtb.misses", misses);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.contains("dtb.hits"));
    EXPECT_FALSE(reg.contains("dtb.evictions"));
    EXPECT_EQ(reg.get("dtb.hits"), 0u);

    hits += 3;
    ++misses;
    // The registry is a view, not a copy.
    EXPECT_EQ(reg.get("dtb.hits"), 3u);
    EXPECT_EQ(reg.get("dtb.misses"), 1u);
    EXPECT_EQ(reg.get("absent"), 0u);

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.at("dtb.hits"), 3u);
}

TEST(ObsRegistry, HierarchicalTotals)
{
    obs::Counter a, b, c;
    obs::Registry reg;
    reg.add("dtb.hits", a);
    reg.add("dtb.misses", b);
    reg.add("dtbl1.hits", c); // "dtb" prefix must NOT match "dtbl1"
    a += 5;
    b += 2;
    c += 100;
    EXPECT_EQ(reg.total("dtb"), 7u);
    EXPECT_EQ(reg.total("dtbl1"), 100u);
    EXPECT_EQ(reg.total("icache"), 0u);
}

TEST(ObsRegistry, DuplicateNameIsAnInternalError)
{
    obs::Counter a, b;
    obs::Registry reg;
    reg.add("x", a);
    EXPECT_THROW(reg.add("x", b), PanicError);
}

TEST(ObsRegistry, JoinName)
{
    EXPECT_EQ(obs::joinName("dtb", "hits"), "dtb.hits");
    EXPECT_EQ(obs::joinName("", "hits"), "hits");
}

// ---- the event tracer ------------------------------------------------------

TEST(ObsTracer, DisabledRecordsNothing)
{
    obs::Tracer t;
    EXPECT_FALSE(t.enabled());
    t.record(obs::EventKind::DtbHit, 1, 2);
    EXPECT_EQ(t.seen(), 0u);
    EXPECT_TRUE(t.events().empty());
}

TEST(ObsTracer, RecordsInOrder)
{
    obs::Tracer t;
    t.enable(16);
    for (uint64_t i = 0; i < 5; ++i)
        t.record(obs::EventKind::Fetch, i * 10, i, i + 100);
    EXPECT_EQ(t.seen(), 5u);
    EXPECT_EQ(t.dropped(), 0u);
    auto events = t.events();
    ASSERT_EQ(events.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].cycle, i * 10);
        EXPECT_EQ(events[i].addr, i);
        EXPECT_EQ(events[i].arg, i + 100);
    }
}

TEST(ObsTracer, BoundedRingKeepsNewestAndCountsDropped)
{
    obs::Tracer t;
    t.enable(4);
    for (uint64_t i = 0; i < 10; ++i)
        t.record(obs::EventKind::Decode, i, i);
    EXPECT_EQ(t.seen(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    auto events = t.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest retained first: cycles 6, 7, 8, 9.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].cycle, 6 + i);
}

TEST(ObsTracer, ClearKeepsRingAndEnablement)
{
    obs::Tracer t;
    t.enable(8);
    t.record(obs::EventKind::Trap, 1, 2);
    t.clear();
    EXPECT_TRUE(t.enabled());
    EXPECT_EQ(t.seen(), 0u);
    EXPECT_TRUE(t.events().empty());
    t.record(obs::EventKind::Trap, 3, 4);
    EXPECT_EQ(t.events().size(), 1u);
}

TEST(ObsTracer, EveryKindHasAStableName)
{
    for (auto kind : {obs::EventKind::Fetch, obs::EventKind::Decode,
                      obs::EventKind::DtbHit, obs::EventKind::DtbMiss,
                      obs::EventKind::DtbEvict,
                      obs::EventKind::DtbReject, obs::EventKind::Trap,
                      obs::EventKind::Translate,
                      obs::EventKind::Promote}) {
        std::string name = obs::eventKindName(kind);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
}

// ---- profile reports -------------------------------------------------------

TEST(ObsReport, JsonlShapeAndEventLines)
{
    obs::ProfileData p;
    p.meta.emplace_back("program", "demo");
    p.phases.emplace_back("fetch", 10);
    p.phases.emplace_back("total", 10);
    p.counters["dtb.hits"] = 7;
    p.ratios.emplace_back("dtb.hit_ratio", 0.875);
    p.events.push_back(
        obs::Event{42, 5, 1, obs::EventKind::DtbMiss});
    p.eventsSeen = 1;

    std::string doc = obs::toJsonl(p);
    // One line per section plus one per event, each valid JSON.
    size_t lines = static_cast<size_t>(
        std::count(doc.begin(), doc.end(), '\n'));
    EXPECT_EQ(lines, 6u);
    EXPECT_NE(doc.find("{\"type\":\"meta\",\"program\":\"demo\"}"),
              std::string::npos);
    EXPECT_NE(doc.find("\"dtb.hits\":7"), std::string::npos);
    EXPECT_NE(doc.find("{\"type\":\"event\",\"cycle\":42,"
                       "\"kind\":\"dtb_miss\",\"addr\":5,\"arg\":1}"),
              std::string::npos);
}

TEST(ObsReport, EmbeddedJsonCarriesNoEventBodies)
{
    obs::ProfileData p;
    p.counters["x"] = 1;
    p.events.assign(3, obs::Event{});
    p.eventsSeen = 3;
    JsonWriter jw;
    obs::writeJson(jw, p);
    std::string doc = jw.str();
    EXPECT_NE(doc.find("\"events_seen\":3"), std::string::npos);
    EXPECT_EQ(doc.find("\"type\":\"event\""), std::string::npos);
}

// ---- machine integration ---------------------------------------------------

/** One sample run with the image and machine kept alive for inspection. */
struct SampleRun
{
    std::unique_ptr<EncodedDir> image;
    std::unique_ptr<Machine> machine;
    RunResult result;
};

SampleRun
runSample(const char *name, MachineKind kind, MachineConfig cfg)
{
    SampleRun sr;
    const auto &sample = workload::sampleByName(name);
    DirProgram prog = hlr::compileSource(sample.source);
    sr.image = encodeDir(prog, EncodingScheme::Huffman);
    cfg.kind = kind;
    sr.machine = std::make_unique<Machine>(*sr.image, cfg);
    sr.result = sr.machine->run(sample.input);
    return sr;
}

TEST(ObsMachine, RegistryAgreesWithLegacyDtbCounters)
{
    SampleRun sr = runSample("collatz", MachineKind::Dtb,
                             MachineConfig{});
    const Machine *machine = sr.machine.get();
    const RunResult &r = sr.result;
    ASSERT_NE(machine->dtb(), nullptr);
    const obs::Registry &reg = machine->registry();

    // Registry view == legacy accessors == RunResult legacy stats.
    EXPECT_GT(reg.get("dtb.hits"), 0u);
    EXPECT_EQ(reg.get("dtb.hits"), machine->dtb()->hits());
    EXPECT_EQ(reg.get("dtb.misses"), machine->dtb()->misses());
    EXPECT_EQ(reg.get("dtb.hits"), r.stats.get("dtb_hits"));
    EXPECT_EQ(reg.get("dtb.misses"), r.stats.get("dtb_misses"));
    EXPECT_EQ(reg.get("dtb.inserts"), r.stats.get("dtb_inserts"));
    EXPECT_EQ(reg.get("dtb.rejects"), r.stats.get("dtb_rejects"));
    EXPECT_EQ(reg.get("machine.dir_instrs"), r.dirInstrs);
    EXPECT_EQ(reg.get("machine.micro_ops"), r.stats.get("micro_ops"));
    EXPECT_EQ(reg.get("machine.short_instrs"),
              r.stats.get("short_instrs"));

    // The snapshot in the RunResult matches the live registry.
    EXPECT_EQ(r.counters, reg.snapshot());
}

TEST(ObsMachine, RegistryAgreesWithLegacyCacheCounters)
{
    SampleRun sr = runSample("sieve", MachineKind::Cached,
                             MachineConfig{});
    const Machine *machine = sr.machine.get();
    const RunResult &r = sr.result;
    ASSERT_NE(machine->icache(), nullptr);
    EXPECT_EQ(r.counters.at("icache.hits"), machine->icache()->hits());
    EXPECT_EQ(r.counters.at("icache.hits"), r.stats.get("icache_hits"));
    EXPECT_EQ(r.counters.at("icache.misses"),
              r.stats.get("icache_misses"));
    EXPECT_EQ(r.counters.at("mem.level1_accesses"),
              r.stats.get("mem_level1_accesses"));
    // No DTB on the cached organization: no dtb.* counters registered.
    EXPECT_EQ(r.counters.count("dtb.hits"), 0u);
}

TEST(ObsMachine, TypedEventsFollowTheFigure4Flow)
{
    MachineConfig cfg;
    cfg.profileEvents = true;
    // Big enough that no event of the run is dropped.
    cfg.profileEventCapacity = size_t{1} << 18;
    RunResult r = runSample("collatz", MachineKind::Dtb, cfg).result;
    ASSERT_FALSE(r.events.empty());
    EXPECT_EQ(r.eventsDropped, 0u);
    EXPECT_EQ(r.eventsSeen, r.events.size());

    // The very first INTERP misses, traps and translates, in order.
    ASSERT_GE(r.events.size(), 3u);
    EXPECT_EQ(r.events[0].kind, obs::EventKind::DtbMiss);
    EXPECT_EQ(r.events[1].kind, obs::EventKind::Trap);

    uint64_t hits = 0, misses = 0, translates = 0, prev_cycle = 0;
    for (const obs::Event &e : r.events) {
        // Cycle stamps never run backwards.
        EXPECT_GE(e.cycle, prev_cycle);
        prev_cycle = e.cycle;
        hits += e.kind == obs::EventKind::DtbHit;
        misses += e.kind == obs::EventKind::DtbMiss;
        translates += e.kind == obs::EventKind::Translate;
    }
    // Event counts agree with the counters.
    EXPECT_EQ(hits, r.counters.at("dtb.hits"));
    EXPECT_EQ(misses, r.counters.at("dtb.misses"));
    EXPECT_EQ(translates,
              r.counters.at("machine.translated_instrs"));
}

TEST(ObsMachine, EventsOffByDefaultAndRingBounded)
{
    RunResult plain =
        runSample("fib", MachineKind::Dtb, MachineConfig{}).result;
    EXPECT_TRUE(plain.events.empty());
    EXPECT_EQ(plain.eventsSeen, 0u);

    MachineConfig cfg;
    cfg.profileEvents = true;
    cfg.profileEventCapacity = 8;
    RunResult traced = runSample("fib", MachineKind::Dtb, cfg).result;
    EXPECT_EQ(traced.events.size(), 8u);
    EXPECT_GT(traced.eventsDropped, 0u);
    EXPECT_EQ(traced.eventsSeen,
              traced.events.size() + traced.eventsDropped);
}

TEST(ObsMachine, ProfileJsonlMatchesRunResultStatistics)
{
    RunResult r =
        runSample("qsort", MachineKind::Dtb, MachineConfig{}).result;
    ProfileMeta meta;
    meta.program = "qsort";
    meta.machine = "dtb";
    meta.encoding = "huffman";
    std::string doc = profileJsonl(meta, r);

    // The acceptance contract: the JSONL counters equal the legacy
    // RunResult statistics, byte for byte.
    auto expectCounter = [&doc](const std::string &name, uint64_t v) {
        std::string needle =
            "\"" + name + "\":" + std::to_string(v);
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle;
    };
    expectCounter("dtb.hits", r.stats.get("dtb_hits"));
    expectCounter("dtb.misses", r.stats.get("dtb_misses"));
    expectCounter("dtb.inserts", r.stats.get("dtb_inserts"));
    expectCounter("machine.dir_instrs", r.dirInstrs);
    expectCounter("machine.short_instrs",
                  r.stats.get("short_instrs"));
    EXPECT_NE(doc.find("\"type\":\"phases\""), std::string::npos);
    EXPECT_NE(doc.find("\"total\":" + std::to_string(r.cycles)),
              std::string::npos);
}

TEST(ObsMachine, CountersResetBetweenRuns)
{
    const auto &sample = workload::sampleByName("fib");
    DirProgram prog = hlr::compileSource(sample.source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    Machine machine(*image, cfg);
    RunResult first = machine.run(sample.input);
    RunResult second = machine.run(sample.input);
    // Repeated runs are bit-identical, including the counter snapshot.
    EXPECT_EQ(first.counters, second.counters);
    EXPECT_EQ(first.cycles, second.cycles);
}

} // anonymous namespace
} // namespace uhm
