/**
 * @file
 * Tests for the observability layer: the counters registry, the typed
 * event tracer, the profile reports, and their integration with the
 * machine — the registry view must agree exactly with the legacy
 * accessors and RunResult statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <set>

#include "hlr/compiler.hh"
#include "obs/counter.hh"
#include "obs/histogram.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "obs/window.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

namespace uhm
{
namespace
{

// ---- counters and the registry ---------------------------------------------

TEST(ObsCounter, IncrementAndReset)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    c.add(2);
    EXPECT_EQ(c.value(), 7u);
    EXPECT_EQ(static_cast<uint64_t>(c), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, LiveViewOverRegisteredCounters)
{
    obs::Counter hits, misses;
    obs::Registry reg;
    reg.add("dtb.hits", hits);
    reg.add("dtb.misses", misses);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.contains("dtb.hits"));
    EXPECT_FALSE(reg.contains("dtb.evictions"));
    EXPECT_EQ(reg.get("dtb.hits"), 0u);

    hits += 3;
    ++misses;
    // The registry is a view, not a copy.
    EXPECT_EQ(reg.get("dtb.hits"), 3u);
    EXPECT_EQ(reg.get("dtb.misses"), 1u);
    EXPECT_EQ(reg.get("absent"), 0u);

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.at("dtb.hits"), 3u);
}

TEST(ObsRegistry, HierarchicalTotals)
{
    obs::Counter a, b, c;
    obs::Registry reg;
    reg.add("dtb.hits", a);
    reg.add("dtb.misses", b);
    reg.add("dtbl1.hits", c); // "dtb" prefix must NOT match "dtbl1"
    a += 5;
    b += 2;
    c += 100;
    EXPECT_EQ(reg.total("dtb"), 7u);
    EXPECT_EQ(reg.total("dtbl1"), 100u);
    EXPECT_EQ(reg.total("icache"), 0u);
}

TEST(ObsRegistry, DuplicateNameIsAnInternalError)
{
    obs::Counter a, b;
    obs::Registry reg;
    reg.add("x", a);
    EXPECT_THROW(reg.add("x", b), PanicError);
}

TEST(ObsRegistry, JoinName)
{
    EXPECT_EQ(obs::joinName("dtb", "hits"), "dtb.hits");
    EXPECT_EQ(obs::joinName("", "hits"), "hits");
}

// ---- the event tracer ------------------------------------------------------

TEST(ObsTracer, DisabledRecordsNothing)
{
    obs::Tracer t;
    EXPECT_FALSE(t.enabled());
    t.record(obs::EventKind::DtbHit, 1, 2);
    EXPECT_EQ(t.seen(), 0u);
    EXPECT_TRUE(t.events().empty());
}

TEST(ObsTracer, RecordsInOrder)
{
    obs::Tracer t;
    t.enable(16);
    for (uint64_t i = 0; i < 5; ++i)
        t.record(obs::EventKind::Fetch, i * 10, i, i + 100);
    EXPECT_EQ(t.seen(), 5u);
    EXPECT_EQ(t.dropped(), 0u);
    auto events = t.events();
    ASSERT_EQ(events.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].cycle, i * 10);
        EXPECT_EQ(events[i].addr, i);
        EXPECT_EQ(events[i].arg, i + 100);
    }
}

TEST(ObsTracer, BoundedRingKeepsNewestAndCountsDropped)
{
    obs::Tracer t;
    t.enable(4);
    for (uint64_t i = 0; i < 10; ++i)
        t.record(obs::EventKind::Decode, i, i);
    EXPECT_EQ(t.seen(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    auto events = t.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest retained first: cycles 6, 7, 8, 9.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].cycle, 6 + i);
}

TEST(ObsTracer, ClearKeepsRingAndEnablement)
{
    obs::Tracer t;
    t.enable(8);
    t.record(obs::EventKind::Trap, 1, 2);
    t.clear();
    EXPECT_TRUE(t.enabled());
    EXPECT_EQ(t.seen(), 0u);
    EXPECT_TRUE(t.events().empty());
    t.record(obs::EventKind::Trap, 3, 4);
    EXPECT_EQ(t.events().size(), 1u);
}

TEST(ObsTracer, EveryKindHasAUniqueStableName)
{
    // Exhaustive over allEventKinds: a new kind that is not appended
    // there (or falls into eventKindName's "?" default) fails here.
    static_assert(std::size(obs::allEventKinds) == obs::numEventKinds);
    std::set<std::string> names;
    for (obs::EventKind kind : obs::allEventKinds) {
        std::string name = obs::eventKindName(kind);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate event kind name " << name;
    }
    EXPECT_EQ(names.size(), obs::numEventKinds);

    // Spot-check stability: these names are schema, not cosmetics —
    // profile consumers and scripts/trace_report.py match on them.
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::DtbMiss),
                 "dtb_miss");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Translate2),
                 "translate2");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Sample), "sample");
}

// ---- histograms ------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries)
{
    EXPECT_EQ(obs::histogramBucketOf(0), 0u);
    EXPECT_EQ(obs::histogramBucketOf(1), 1u);
    EXPECT_EQ(obs::histogramBucketOf(2), 2u);
    EXPECT_EQ(obs::histogramBucketOf(3), 2u);
    EXPECT_EQ(obs::histogramBucketOf(4), 3u);
    EXPECT_EQ(obs::histogramBucketOf(7), 3u);
    EXPECT_EQ(obs::histogramBucketOf(8), 4u);
    EXPECT_EQ(obs::histogramBucketOf(~uint64_t{0}), 64u);
    for (unsigned b = 0; b < obs::Histogram::numBuckets; ++b) {
        // Each bucket's bounds round-trip through bucketOf.
        EXPECT_EQ(obs::histogramBucketOf(obs::histogramBucketLow(b)), b);
        EXPECT_EQ(obs::histogramBucketOf(obs::histogramBucketHigh(b)),
                  b);
    }
}

TEST(ObsHistogram, RecordSnapshotAndReset)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    for (uint64_t v : {0, 1, 5, 6, 100})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 112u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.bucketCount(0), 1u); // {0}
    EXPECT_EQ(h.bucketCount(3), 2u); // {5, 6}
    EXPECT_EQ(h.bucketCount(7), 1u); // {100}

    obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 112u);
    // Sparse and bucket-ordered: only the non-empty buckets appear.
    ASSERT_EQ(snap.buckets.size(), 4u);
    EXPECT_EQ(snap.buckets[0], (std::pair<unsigned, uint64_t>{0, 1}));
    EXPECT_EQ(snap.buckets[1], (std::pair<unsigned, uint64_t>{1, 1}));
    EXPECT_EQ(snap.buckets[2], (std::pair<unsigned, uint64_t>{3, 2}));
    EXPECT_EQ(snap.buckets[3], (std::pair<unsigned, uint64_t>{7, 1}));

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.snapshot().buckets.empty());
}

TEST(ObsHistogram, SnapshotMergeAddsCountsAndWidensBounds)
{
    obs::Histogram a, b;
    a.record(2);
    a.record(3);
    b.record(3);
    b.record(40);

    obs::HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 4u);
    EXPECT_EQ(merged.sum, 48u);
    EXPECT_EQ(merged.min, 2u);
    EXPECT_EQ(merged.max, 40u);
    ASSERT_EQ(merged.buckets.size(), 2u);
    EXPECT_EQ(merged.buckets[0], (std::pair<unsigned, uint64_t>{2, 3}));
    EXPECT_EQ(merged.buckets[1], (std::pair<unsigned, uint64_t>{6, 1}));

    // Merging an empty snapshot must not disturb min/max.
    merged.merge(obs::HistogramSnapshot{});
    EXPECT_EQ(merged.min, 2u);
    EXPECT_EQ(merged.max, 40u);
}

TEST(ObsHistogram, JsonShape)
{
    obs::Histogram h;
    h.record(5);
    h.record(9);
    JsonWriter jw;
    h.snapshot().writeJson(jw);
    EXPECT_EQ(jw.str(),
              "{\"count\":2,\"sum\":14,\"min\":5,\"max\":9,"
              "\"buckets\":[[3,1],[4,1]]}");
}

TEST(ObsRegistry, HistogramsRegisterAlongsideCounters)
{
    obs::Counter c;
    obs::Histogram h;
    obs::Registry reg;
    reg.add("dtb.hits", c);
    reg.addHistogram("translate.latency_cycles", h);
    EXPECT_EQ(reg.numHistograms(), 1u);
    EXPECT_TRUE(reg.containsHistogram("translate.latency_cycles"));
    EXPECT_FALSE(reg.containsHistogram("dtb.hits"));

    h.record(12);
    // Live view, same as counters.
    ASSERT_NE(reg.histogram("translate.latency_cycles"), nullptr);
    EXPECT_EQ(reg.histogram("translate.latency_cycles")->count(), 1u);
    auto snap = reg.histogramSnapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap.at("translate.latency_cycles").sum, 12u);

    obs::Histogram dup;
    EXPECT_THROW(reg.addHistogram("translate.latency_cycles", dup),
                 PanicError);
}

// ---- timelines -------------------------------------------------------------

TEST(ObsTimeline, EveryKindHasATrack)
{
    std::set<std::string> tracks;
    for (obs::EventKind kind : obs::allEventKinds) {
        std::string track = obs::eventKindTrack(kind);
        EXPECT_FALSE(track.empty());
        tracks.insert(track);
        int tid = obs::eventKindTrackId(kind);
        EXPECT_GT(tid, 0); // tid 0 is the cycle-bucket overview
        EXPECT_LE(tid, 8); // 8 = the serve track
    }
    // The unit mapping: fetch on the IFU, decode on IU1, dispatch on
    // IU2, translation on the translator, tiering on the tier engine.
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::Fetch), "ifu");
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::Decode), "iu1");
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::DtbHit), "iu2");
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::Translate),
                 "translator");
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::TraceEnter),
                 "tier");
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::Sample),
                 "sampler");
    EXPECT_STREQ(obs::eventKindTrack(obs::EventKind::ServeEnqueue),
                 "serve");
}

TEST(ObsTimeline, SpansCarveConsecutiveStamps)
{
    using obs::Event;
    using obs::EventKind;
    std::vector<Event> events = {
        {10, 100, 1, EventKind::DtbMiss},
        {25, 100, 2, EventKind::Translate},
        {25, 100, 3, EventKind::DtbHit},
        {40, 104, 4, EventKind::DtbHit},
    };
    auto spans = obs::buildTimelineSpans(events);
    ASSERT_EQ(spans.size(), 4u);
    // The first event has no earlier boundary: it opens at its stamp.
    EXPECT_EQ(spans[0].start, 10u);
    EXPECT_EQ(spans[0].end, 10u);
    EXPECT_EQ(spans[0].kind, EventKind::DtbMiss);
    // Span i = [stamp i-1, stamp i], attributed to event i.
    EXPECT_EQ(spans[1].start, 10u);
    EXPECT_EQ(spans[1].end, 25u);
    EXPECT_EQ(spans[1].duration(), 15u);
    EXPECT_EQ(spans[1].addr, 100u);
    EXPECT_EQ(spans[1].arg, 2u);
    // Equal stamps produce a zero-width span, never an underflow.
    EXPECT_EQ(spans[2].duration(), 0u);
    EXPECT_EQ(spans[3].start, 25u);
    EXPECT_EQ(spans[3].end, 40u);
    EXPECT_TRUE(obs::buildTimelineSpans({}).empty());
}

TEST(ObsTimeline, ChromeTraceShape)
{
    obs::ProfileData p;
    p.meta.emplace_back("program", "demo");
    p.meta.emplace_back("machine", "dtb");
    p.phases.emplace_back("fetch", 4);
    p.phases.emplace_back("total", 4);
    p.events.push_back(obs::Event{3, 7, 1, obs::EventKind::DtbMiss});
    p.events.push_back(obs::Event{9, 7, 2, obs::EventKind::Translate});
    p.eventsSeen = 2;
    obs::OccupancySample s;
    s.cycle = 8;
    s.dtbSetOccupancy = {1, 0};
    p.samples.push_back(s);

    std::string doc = obs::toChromeTrace(p);
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    // Track metadata, the bucket overview span, both event spans and
    // the occupancy counter series are all present.
    EXPECT_NE(doc.find("\"name\":\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"iu2\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"fetch\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"dtb_miss\",\"ph\":\"X\",\"ts\":3"),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"translate\",\"ph\":\"X\",\"ts\":3"),
              std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"translator\",\"dur\":6"),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\",\"ts\":8"), std::string::npos);
    EXPECT_NE(doc.find("\"events_seen\":2"), std::string::npos);
    // No drops: the timeline is complete.
    EXPECT_NE(doc.find("\"complete\":true"), std::string::npos);
}

// ---- profile reports -------------------------------------------------------

TEST(ObsReport, JsonlShapeAndEventLines)
{
    obs::ProfileData p;
    p.meta.emplace_back("program", "demo");
    p.phases.emplace_back("fetch", 10);
    p.phases.emplace_back("total", 10);
    p.counters["dtb.hits"] = 7;
    obs::Histogram h;
    h.record(3);
    p.histograms["translate.latency_cycles"] = h.snapshot();
    p.ratios.emplace_back("dtb.hit_ratio", 0.875);
    p.events.push_back(
        obs::Event{42, 5, 1, obs::EventKind::DtbMiss});
    p.eventsSeen = 1;

    std::string doc = obs::toJsonl(p);
    // One line per section plus one per event, each valid JSON.
    size_t lines = static_cast<size_t>(
        std::count(doc.begin(), doc.end(), '\n'));
    EXPECT_EQ(lines, 7u);
    EXPECT_NE(doc.find("{\"type\":\"meta\",\"program\":\"demo\"}"),
              std::string::npos);
    EXPECT_NE(doc.find("\"dtb.hits\":7"), std::string::npos);
    EXPECT_NE(doc.find("{\"type\":\"histograms\","
                       "\"translate.latency_cycles\":{\"count\":1,"),
              std::string::npos);
    EXPECT_NE(doc.find("{\"type\":\"event\",\"cycle\":42,"
                       "\"kind\":\"dtb_miss\",\"addr\":5,\"arg\":1}"),
              std::string::npos);
}

TEST(ObsReport, EmbeddedJsonCarriesNoEventBodies)
{
    obs::ProfileData p;
    p.counters["x"] = 1;
    p.events.assign(3, obs::Event{});
    p.eventsSeen = 3;
    JsonWriter jw;
    obs::writeJson(jw, p);
    std::string doc = jw.str();
    EXPECT_NE(doc.find("\"events_seen\":3"), std::string::npos);
    EXPECT_EQ(doc.find("\"type\":\"event\""), std::string::npos);
}

// ---- machine integration ---------------------------------------------------

/** One sample run with the image and machine kept alive for inspection. */
struct SampleRun
{
    std::unique_ptr<EncodedDir> image;
    std::unique_ptr<Machine> machine;
    RunResult result;
};

SampleRun
runSample(const char *name, MachineKind kind, MachineConfig cfg)
{
    SampleRun sr;
    const auto &sample = workload::sampleByName(name);
    DirProgram prog = hlr::compileSource(sample.source);
    sr.image = encodeDir(prog, EncodingScheme::Huffman);
    cfg.kind = kind;
    sr.machine = std::make_unique<Machine>(*sr.image, cfg);
    sr.result = sr.machine->run(sample.input);
    return sr;
}

TEST(ObsMachine, RegistryAgreesWithLegacyDtbCounters)
{
    SampleRun sr = runSample("collatz", MachineKind::Dtb,
                             MachineConfig{});
    const Machine *machine = sr.machine.get();
    const RunResult &r = sr.result;
    ASSERT_NE(machine->dtb(), nullptr);
    const obs::Registry &reg = machine->registry();

    // Registry view == legacy accessors == RunResult legacy stats.
    EXPECT_GT(reg.get("dtb.hits"), 0u);
    EXPECT_EQ(reg.get("dtb.hits"), machine->dtb()->hits());
    EXPECT_EQ(reg.get("dtb.misses"), machine->dtb()->misses());
    EXPECT_EQ(reg.get("dtb.hits"), r.stats.get("dtb_hits"));
    EXPECT_EQ(reg.get("dtb.misses"), r.stats.get("dtb_misses"));
    EXPECT_EQ(reg.get("dtb.inserts"), r.stats.get("dtb_inserts"));
    EXPECT_EQ(reg.get("dtb.rejects"), r.stats.get("dtb_rejects"));
    EXPECT_EQ(reg.get("machine.dir_instrs"), r.dirInstrs);
    EXPECT_EQ(reg.get("machine.micro_ops"), r.stats.get("micro_ops"));
    EXPECT_EQ(reg.get("machine.short_instrs"),
              r.stats.get("short_instrs"));

    // The snapshot in the RunResult matches the live registry.
    EXPECT_EQ(r.counters, reg.snapshot());
}

TEST(ObsMachine, RegistryAgreesWithLegacyCacheCounters)
{
    SampleRun sr = runSample("sieve", MachineKind::Cached,
                             MachineConfig{});
    const Machine *machine = sr.machine.get();
    const RunResult &r = sr.result;
    ASSERT_NE(machine->icache(), nullptr);
    EXPECT_EQ(r.counters.at("icache.hits"), machine->icache()->hits());
    EXPECT_EQ(r.counters.at("icache.hits"), r.stats.get("icache_hits"));
    EXPECT_EQ(r.counters.at("icache.misses"),
              r.stats.get("icache_misses"));
    EXPECT_EQ(r.counters.at("mem.level1_accesses"),
              r.stats.get("mem_level1_accesses"));
    // No DTB on the cached organization: no dtb.* counters registered.
    EXPECT_EQ(r.counters.count("dtb.hits"), 0u);
}

TEST(ObsMachine, TypedEventsFollowTheFigure4Flow)
{
    MachineConfig cfg;
    cfg.profileEvents = true;
    // Big enough that no event of the run is dropped.
    cfg.profileEventCapacity = size_t{1} << 18;
    RunResult r = runSample("collatz", MachineKind::Dtb, cfg).result;
    ASSERT_FALSE(r.events.empty());
    EXPECT_EQ(r.eventsDropped, 0u);
    EXPECT_EQ(r.eventsSeen, r.events.size());

    // The very first INTERP misses, traps and translates, in order.
    ASSERT_GE(r.events.size(), 3u);
    EXPECT_EQ(r.events[0].kind, obs::EventKind::DtbMiss);
    EXPECT_EQ(r.events[1].kind, obs::EventKind::Trap);

    uint64_t hits = 0, misses = 0, translates = 0, prev_cycle = 0;
    for (const obs::Event &e : r.events) {
        // Cycle stamps never run backwards.
        EXPECT_GE(e.cycle, prev_cycle);
        prev_cycle = e.cycle;
        hits += e.kind == obs::EventKind::DtbHit;
        misses += e.kind == obs::EventKind::DtbMiss;
        translates += e.kind == obs::EventKind::Translate;
    }
    // Event counts agree with the counters.
    EXPECT_EQ(hits, r.counters.at("dtb.hits"));
    EXPECT_EQ(misses, r.counters.at("dtb.misses"));
    EXPECT_EQ(translates,
              r.counters.at("machine.translated_instrs"));
}

TEST(ObsMachine, EventsOffByDefaultAndRingBounded)
{
    RunResult plain =
        runSample("fib", MachineKind::Dtb, MachineConfig{}).result;
    EXPECT_TRUE(plain.events.empty());
    EXPECT_EQ(plain.eventsSeen, 0u);

    MachineConfig cfg;
    cfg.profileEvents = true;
    cfg.profileEventCapacity = 8;
    RunResult traced = runSample("fib", MachineKind::Dtb, cfg).result;
    EXPECT_EQ(traced.events.size(), 8u);
    EXPECT_GT(traced.eventsDropped, 0u);
    EXPECT_EQ(traced.eventsSeen,
              traced.events.size() + traced.eventsDropped);
}

TEST(ObsMachine, ProfileJsonlMatchesRunResultStatistics)
{
    RunResult r =
        runSample("qsort", MachineKind::Dtb, MachineConfig{}).result;
    ProfileMeta meta;
    meta.program = "qsort";
    meta.machine = "dtb";
    meta.encoding = "huffman";
    std::string doc = profileJsonl(meta, r);

    // The acceptance contract: the JSONL counters equal the legacy
    // RunResult statistics, byte for byte.
    auto expectCounter = [&doc](const std::string &name, uint64_t v) {
        std::string needle =
            "\"" + name + "\":" + std::to_string(v);
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle;
    };
    expectCounter("dtb.hits", r.stats.get("dtb_hits"));
    expectCounter("dtb.misses", r.stats.get("dtb_misses"));
    expectCounter("dtb.inserts", r.stats.get("dtb_inserts"));
    expectCounter("machine.dir_instrs", r.dirInstrs);
    expectCounter("machine.short_instrs",
                  r.stats.get("short_instrs"));
    EXPECT_NE(doc.find("\"type\":\"phases\""), std::string::npos);
    EXPECT_NE(doc.find("\"total\":" + std::to_string(r.cycles)),
              std::string::npos);
}

TEST(ObsMachine, HistogramsFollowTheMissPath)
{
    RunResult r =
        runSample("qsort", MachineKind::Dtb, MachineConfig{}).result;
    // One latency observation per DTB miss: the histogram count must
    // agree with the counter, and every translation takes >= the trap
    // cost, so the minimum is positive.
    ASSERT_EQ(r.histograms.count("translate.latency_cycles"), 1u);
    const obs::HistogramSnapshot &lat =
        r.histograms.at("translate.latency_cycles");
    EXPECT_EQ(lat.count, r.counters.at("dtb.misses"));
    EXPECT_GT(lat.min, 0u);
    EXPECT_GE(lat.max, lat.min);
    // Occupancy is recorded once per eviction; residency additionally
    // drains the entries still resident at HALT, so every insert
    // eventually lands exactly one residency observation.
    EXPECT_EQ(r.histograms.at("dtb.residency_cycles").count,
              r.counters.at("dtb.inserts"));
    EXPECT_GE(r.histograms.at("dtb.residency_cycles").count,
              r.histograms.at("dtb.evict_set_occupancy").count);

    // No DTB, no DTB histograms.
    RunResult conv = runSample("fib", MachineKind::Conventional,
                               MachineConfig{}).result;
    EXPECT_EQ(conv.histograms.count("translate.latency_cycles"), 0u);
}

TEST(ObsMachine, OccupancySamplerIsPeriodicAndDeterministic)
{
    // Off by default: no samples, no cost.
    RunResult plain =
        runSample("qsort", MachineKind::Dtb, MachineConfig{}).result;
    EXPECT_TRUE(plain.samples.empty());

    MachineConfig cfg;
    cfg.sampleIntervalCycles = 1000;
    SampleRun sr = runSample("qsort", MachineKind::Dtb, cfg);
    const RunResult &r = sr.result;
    ASSERT_FALSE(r.samples.empty());
    uint64_t next_at = cfg.sampleIntervalCycles;
    uint64_t prev_instrs = 0;
    for (const obs::OccupancySample &s : r.samples) {
        // One sample per interval crossing: each stamp is at or past
        // the boundary the previous sample armed, never a burst.
        EXPECT_GE(s.cycle, next_at);
        next_at = (s.cycle / cfg.sampleIntervalCycles + 1) *
                  cfg.sampleIntervalCycles;
        EXPECT_GE(s.dirInstrs, prev_instrs);
        prev_instrs = s.dirInstrs;
        ASSERT_FALSE(s.dtbSetOccupancy.empty());
        EXPECT_TRUE(s.traceSetOccupancy.empty()); // no tier on Dtb
    }
    // The deltas tile the run: summed, they equal the final counters.
    uint64_t hits = 0, misses = 0;
    for (const obs::OccupancySample &s : r.samples) {
        hits += s.dtbHitsDelta;
        misses += s.dtbMissesDelta;
    }
    EXPECT_LE(hits, r.counters.at("dtb.hits"));
    EXPECT_LE(misses, r.counters.at("dtb.misses"));

    // Sampling is part of the deterministic machine state: a repeat
    // run reproduces the series exactly, and never changes the cycles.
    RunResult again = sr.machine->run(
        workload::sampleByName("qsort").input);
    EXPECT_EQ(again.samples, r.samples);
    EXPECT_EQ(again.cycles, plain.cycles);
}

TEST(ObsMachine, TieredSamplesCarryTraceOccupancy)
{
    MachineConfig cfg;
    cfg.sampleIntervalCycles = 4096;
    RunResult r = runSample("qsort", MachineKind::Tiered, cfg).result;
    ASSERT_FALSE(r.samples.empty());
    EXPECT_FALSE(r.samples.back().traceSetOccupancy.empty());
    ASSERT_EQ(r.histograms.count("tier.trace_len_dir"), 1u);
    EXPECT_GT(r.histograms.at("tier.trace_len_dir").count, 0u);
}

TEST(ObsMachine, CountersResetBetweenRuns)
{
    const auto &sample = workload::sampleByName("fib");
    DirProgram prog = hlr::compileSource(sample.source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    Machine machine(*image, cfg);
    RunResult first = machine.run(sample.input);
    RunResult second = machine.run(sample.input);
    // Repeated runs are bit-identical, including the counter snapshot.
    EXPECT_EQ(first.counters, second.counters);
    EXPECT_EQ(first.cycles, second.cycles);
}

// ---------------------------------------------------------------------
// Percentile extraction (obs/window.hh)
// ---------------------------------------------------------------------

TEST(ObsPercentile, ExactOnUniformFills)
{
    // Every observation equals v: min == max pins the single live
    // bucket's edges together, so every quantile is exactly v.
    for (uint64_t v : {0ull, 1ull, 7ull, 1000ull, 123456789ull}) {
        obs::Histogram h;
        for (int i = 0; i < 100; ++i)
            h.record(v);
        obs::HistogramSnapshot snap = h.snapshot();
        for (double q : {0.01, 0.50, 0.95, 0.99, 1.0})
            EXPECT_EQ(obs::histogramPercentile(snap, q),
                      static_cast<double>(v))
                << "v=" << v << " q=" << q;
    }
}

TEST(ObsPercentile, NearestRankOnMixedFill)
{
    // 1 x4, 2 x2, 3 x4: log2 buckets put the four 1s alone in bucket 1
    // and the six {2,3}s in bucket 2 (edges [2,3]). Nearest-rank with
    // even in-bucket interpolation lands p50 on 2 and p99 on 3.
    obs::Histogram h;
    for (int i = 0; i < 4; ++i)
        h.record(1);
    for (int i = 0; i < 2; ++i)
        h.record(2);
    for (int i = 0; i < 4; ++i)
        h.record(3);
    obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(obs::histogramPercentile(snap, 0.50), 2.0);
    EXPECT_EQ(obs::histogramPercentile(snap, 0.99), 3.0);
    EXPECT_EQ(obs::histogramPercentile(snap, 0.10), 1.0);
    // The extremes short-circuit to the exact min/max.
    EXPECT_EQ(obs::histogramPercentile(snap, 0.0), 1.0);
    EXPECT_EQ(obs::histogramPercentile(snap, 1.0), 3.0);
}

TEST(ObsPercentile, EmptyHistogramIsZero)
{
    obs::HistogramSnapshot empty;
    EXPECT_EQ(obs::histogramPercentile(empty, 0.5), 0.0);
}

// ---------------------------------------------------------------------
// RollingWindow (obs/window.hh)
// ---------------------------------------------------------------------

TEST(ObsWindow, AggregatesAcrossLiveBuckets)
{
    obs::RollingWindow w(/*window_us=*/16, /*buckets=*/4);
    ASSERT_EQ(w.bucketUs(), 4u);
    w.count("reqs", 0);
    w.count("reqs", 5);
    w.record("lat", 9, 100);
    obs::WindowSnapshot snap = w.snapshot();
    EXPECT_EQ(snap.counter("reqs"), 2u);
    EXPECT_EQ(snap.histograms["lat"].count, 1u);
    EXPECT_EQ(snap.counter("absent"), 0u);
    // Buckets 0..2 are live: span covers 3 bucket widths.
    EXPECT_EQ(snap.spanUs, 12u);
}

TEST(ObsWindow, RotationExpiresOldBucketsDeterministically)
{
    obs::RollingWindow w(/*window_us=*/16, /*buckets=*/4);
    w.count("reqs", 0);  // bucket 0
    w.count("reqs", 4);  // bucket 1
    EXPECT_EQ(w.snapshot().counter("reqs"), 2u);

    // Advance to bucket 4: bucket 0 slides out (4 + 4 <= ... is the
    // expiry rule: index + ringsize <= current), bucket 1 survives.
    w.count("reqs", 16);
    EXPECT_EQ(w.snapshot().counter("reqs"), 2u);

    // Advance to bucket 8: everything before this record is gone.
    w.count("reqs", 32);
    EXPECT_EQ(w.snapshot().counter("reqs"), 1u);

    // Time only advances on record: repeated snapshots are frozen.
    EXPECT_EQ(w.snapshot().counter("reqs"), 1u);
    EXPECT_EQ(w.snapshot().spanUs, w.snapshot().spanUs);
}

TEST(ObsWindow, LateRecordsLandInTheNewestBucket)
{
    obs::RollingWindow w(/*window_us=*/16, /*buckets=*/4);
    w.count("reqs", 100); // bucket 25
    // A stamp that predates the whole window must still be counted —
    // it routes to the newest live bucket instead of resurrecting an
    // expired slot (or crashing).
    w.count("reqs", 0);
    EXPECT_EQ(w.snapshot().counter("reqs"), 2u);
}

TEST(ObsWindow, MergeIsOrderInvariant)
{
    // The same observations distributed across buckets in different
    // arrival orders must produce identical snapshots — bucket merges
    // are per-name additions, which commute.
    const uint64_t stamps[] = {1, 5, 9, 13};
    obs::RollingWindow a(/*window_us=*/16, /*buckets=*/4);
    obs::RollingWindow b(/*window_us=*/16, /*buckets=*/4);
    for (uint64_t t : stamps) {
        a.count("reqs", t);
        a.record("lat", t, t * 10);
    }
    for (size_t i = 0; i < 4; ++i) {
        // b sees the same data, newest bucket touched first within
        // each time step (records never go backwards in time across
        // steps, mirroring out-of-order threads under one lock).
        uint64_t t = stamps[i];
        a.count("alt", t);
        b.count("alt", t);
        b.count("reqs", t);
        b.record("lat", t, t * 10);
    }
    obs::WindowSnapshot sa = a.snapshot();
    obs::WindowSnapshot sb = b.snapshot();
    EXPECT_EQ(sa.counters, sb.counters);
    EXPECT_EQ(sa.spanUs, sb.spanUs);
    ASSERT_EQ(sa.histograms.size(), sb.histograms.size());
    EXPECT_EQ(sa.histograms["lat"], sb.histograms["lat"]);
}

TEST(ObsWindow, ResetForgetsEverything)
{
    obs::RollingWindow w(/*window_us=*/16, /*buckets=*/4);
    w.count("reqs", 3);
    w.record("lat", 3, 42);
    w.reset();
    obs::WindowSnapshot snap = w.snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.histograms.empty());
    EXPECT_EQ(snap.spanUs, 0u);
}

} // anonymous namespace
} // namespace uhm
