/**
 * @file
 * Tests of the serving subsystem (src/serve): protocol parsing, the
 * session cache's byte-identity and pinning guarantees, backpressure,
 * and the daemon's wire behavior against real unix-domain sockets.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <thread>

#include "bench_common.hh"
#include "hlr/compiler.hh"
#include "obs/timeline.hh"
#include "obs/window.hh"
#include "serve/client.hh"
#include "serve/proto.hh"
#include "serve/server.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

using namespace uhm;

namespace
{

/** A fresh socket path per server (tests may run concurrently). */
std::string
testSocketPath()
{
    static int counter = 0;
    return "/tmp/uhm_serve_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++) + ".sock";
}

/**
 * The profile payload a cold single-process run produces — the same
 * pipeline uhm_cli's --profile path executes, built independently of
 * the server.
 */
std::string
coldProfileJsonl(const std::string &name)
{
    const workload::SampleProgram &sample = workload::sampleByName(name);
    DirProgram prog = hlr::compileSource(sample.source);
    serve::MachineSettings settings; // the request-default machine
    auto image = encodeDir(prog, settings.scheme);
    Machine machine(*image, settings.toConfig());
    RunResult r = machine.run(sample.input);
    ProfileMeta meta;
    meta.program = name;
    meta.machine = machineKindName(settings.kind);
    meta.encoding = encodingName(settings.scheme);
    meta.imageBits = image->bitSize();
    return profileJsonl(meta, r);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Protocol.
// ---------------------------------------------------------------------

TEST(ServeProto, ParsesJsonDocuments)
{
    serve::JsonValue v;
    std::string err;
    ASSERT_TRUE(serve::parseJson(
        R"({"a":1,"b":[true,null,-2],"c":"x\n","d":1.5})", v, err))
        << err;
    ASSERT_EQ(v.kind, serve::JsonValue::Kind::Object);
    EXPECT_EQ(v.find("a")->integer, 1);
    EXPECT_EQ(v.find("b")->array.size(), 3u);
    EXPECT_TRUE(v.find("b")->array[0].boolean);
    EXPECT_TRUE(v.find("b")->array[1].isNull());
    EXPECT_EQ(v.find("b")->array[2].integer, -2);
    EXPECT_EQ(v.find("c")->string, "x\n");
    EXPECT_DOUBLE_EQ(v.find("d")->number, 1.5);
    EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(ServeProto, RejectsMalformedJson)
{
    serve::JsonValue v;
    std::string err;
    EXPECT_FALSE(serve::parseJson("{\"a\":}", v, err));
    EXPECT_FALSE(serve::parseJson("{\"a\":1} trailing", v, err));
    EXPECT_FALSE(serve::parseJson("{\"a\":1,\"a\":2}", v, err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(ServeProto, ParsesRequestsStrictly)
{
    serve::Request req;
    std::string err;
    ASSERT_TRUE(serve::parseRequest(
        R"({"id":7,"verb":"run","program":"fib","input":[3],)"
        R"("machine":"tiered","trace_cap":32,"profile":true})",
        req, err))
        << err;
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.verb, serve::Verb::Run);
    EXPECT_EQ(req.program, "fib");
    EXPECT_TRUE(req.inputGiven);
    EXPECT_EQ(req.input, (std::vector<int64_t>{3}));
    EXPECT_EQ(req.machine.kind, MachineKind::Tiered);
    EXPECT_EQ(req.machine.traceCap, 32u);
    EXPECT_TRUE(req.profile);

    // A typo'd field must be rejected, not ignored.
    EXPECT_FALSE(serve::parseRequest(
        R"({"verb":"run","programm":"fib"})", req, err));
    EXPECT_NE(err.find("unknown field"), std::string::npos);

    // verb is mandatory.
    EXPECT_FALSE(serve::parseRequest(R"({"id":1})", req, err));

    // Tier knobs without a tiered machine: same contract as the CLI.
    EXPECT_FALSE(serve::parseRequest(
        R"({"verb":"run","program":"fib","trace_cap":32})", req, err));
    EXPECT_NE(err.find("tiered"), std::string::npos);
}

TEST(ServeProto, FingerprintSeparatesConfigs)
{
    serve::MachineSettings a, b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.kind = MachineKind::Tiered;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.dtbBytes = 8192;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------
// The daemon, over real sockets.
// ---------------------------------------------------------------------

TEST(ServeDaemon, ColdWarmAndConcurrentRunsAreByteIdentical)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 4;
    serve::Server server(cfg);
    server.start();

    const std::string expected = coldProfileJsonl("fib");
    const std::string request =
        R"({"id":1,"verb":"profile","program":"fib"})";

    // Cold, then warm on the same daemon.
    serve::Client client(cfg.socketPath);
    serve::Response cold = client.call(request);
    ASSERT_TRUE(cold.ok) << cold.message;
    EXPECT_FALSE(cold.doc.find("cached")->boolean);
    EXPECT_EQ(cold.payload, expected);

    serve::Response warm = client.call(request);
    ASSERT_TRUE(warm.ok) << warm.message;
    EXPECT_TRUE(warm.doc.find("cached")->boolean);
    EXPECT_EQ(warm.payload, expected);

    // 8-way concurrent fan-out: every response must carry the same
    // bytes, whether it hit the warm session or bypassed a busy one.
    constexpr int fanout = 8;
    std::vector<std::string> payloads(fanout);
    std::vector<std::thread> threads;
    for (int i = 0; i < fanout; ++i) {
        threads.emplace_back([&, i] {
            serve::Client c(cfg.socketPath);
            serve::Response r = c.call(request);
            payloads[i] = r.ok ? r.payload : ("ERROR: " + r.message);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int i = 0; i < fanout; ++i)
        EXPECT_EQ(payloads[i], expected) << "response " << i;

    server.stop();
}

TEST(ServeDaemon, CompileEncodeAndErrorVerbs)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    serve::Response ping = client.call(R"({"id":1,"verb":"ping"})");
    EXPECT_TRUE(ping.ok);

    serve::Response comp = client.call(
        R"({"id":2,"verb":"compile","program":"fib","disasm":true})");
    ASSERT_TRUE(comp.ok) << comp.message;
    EXPECT_GT(comp.uintField("instrs"), 0u);
    EXPECT_EQ(comp.doc.find("program_hash")->string.size(), 16u);
    EXPECT_FALSE(comp.doc.find("disasm")->string.empty());

    serve::Response enc = client.call(
        R"({"id":3,"verb":"encode","program":"fib"})");
    ASSERT_TRUE(enc.ok) << enc.message;
    // The image must be the exact one a cold process builds.
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("fib").source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    EXPECT_EQ(enc.uintField("image_bits"), image->bitSize());
    // The second compile of the same chain is a cache hit.
    EXPECT_TRUE(enc.doc.find("cached")->boolean);

    // Unknown program -> bad_request, and the daemon keeps serving.
    serve::Response bad = client.call(
        R"({"id":4,"verb":"run","program":"no-such-sample"})");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error, "bad_request");

    serve::Response typo =
        client.call(R"({"id":5,"verb":"run","bogus":1})");
    EXPECT_FALSE(typo.ok);
    EXPECT_EQ(typo.error, "bad_request");

    serve::Response after = client.call(R"({"id":6,"verb":"ping"})");
    EXPECT_TRUE(after.ok);

    server.stop();
}

TEST(ServeDaemon, SweepMatchesTheHarnessByteForByte)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    serve::Response r = client.call(
        R"({"id":1,"verb":"sweep","programs":["collatz","fib",)"
        R"("synthetic"]})");
    ASSERT_TRUE(r.ok) << r.message;

    // The reference report, built exactly as `uhm_cli sweep` does.
    std::vector<bench::SweepPoint> points;
    for (const std::string name : {"collatz", "fib", "synthetic"}) {
        bench::SweepPoint point;
        point.label = name;
        if (name == "synthetic") {
            point.program = bench::gridWorkload(2, 1978);
        } else {
            const workload::SampleProgram &sample =
                workload::sampleByName(name);
            point.input = sample.input;
            point.program = hlr::compileSource(sample.source);
        }
        points.push_back(std::move(point));
    }
    bench::SweepRunner runner(2);
    EXPECT_EQ(r.payload, bench::runSweep(runner, points).jsonl);

    server.stop();
}

TEST(ServeDaemon, OverloadIsRejectedExplicitly)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;   // one executor: the first run occupies it
    cfg.maxQueue = 2;  // admit two, reject the rest
    cfg.sliceCycles = 2000;
    serve::Server server(cfg);
    server.start();

    // Pipeline four slow runs without reading a single response: the
    // reader admits 1 and 2, then must reject 3 and 4 immediately.
    serve::Client client(cfg.socketPath);
    for (int id = 1; id <= 4; ++id)
        client.send(R"({"id":)" + std::to_string(id) +
                    R"(,"verb":"run","program":"synthetic"})");

    int ok = 0, overloaded = 0;
    for (int i = 0; i < 4; ++i) {
        serve::Response r = client.recv();
        if (r.ok) {
            ++ok;
            EXPECT_LE(r.id, 2u);
        } else {
            ++overloaded;
            EXPECT_EQ(r.error, "overloaded");
            EXPECT_GE(r.id, 3u);
        }
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(overloaded, 2);

    obs::ProfileData stats = server.statsProfile(false);
    EXPECT_EQ(stats.counters.at("serve.overloaded"), 2u);

    server.stop();
}

TEST(ServeDaemon, BusySessionIsPinnedAgainstEviction)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;       // FIFO: the synthetic run starts first
    cfg.maxSessions = 1;   // the second session must try to evict
    cfg.sliceCycles = 500; // many slices -> session 1 stays busy
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    client.send(R"({"id":1,"verb":"run","program":"synthetic"})");
    client.send(R"({"id":2,"verb":"run","program":"fib"})");
    serve::Response first = client.recv();
    serve::Response second = client.recv();
    EXPECT_TRUE(first.ok) << first.message;
    EXPECT_TRUE(second.ok) << second.message;

    // Inserting the fib session exceeded the capacity while the
    // synthetic session was mid-run: the eviction must have been
    // rejected (not torn), and both runs completed correctly.
    obs::ProfileData stats = server.statsProfile(false);
    EXPECT_GE(stats.counters.at("serve.cache.evict_rejected"), 1u);

    // After both runs released their sessions the deferred shrink
    // brings the cache back inside its bound.
    EXPECT_LE(stats.counters.at("serve.cache.size"), 2u);

    server.stop();
}

TEST(ServeDaemon, StatsShutdownAndTimelineTrack)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    ASSERT_TRUE(
        client.call(R"({"id":1,"verb":"run","program":"fib"})").ok);

    serve::Response stats = client.call(R"({"id":2,"verb":"stats"})");
    ASSERT_TRUE(stats.ok);
    EXPECT_NE(stats.payload.find("serve.requests"), std::string::npos);
    EXPECT_NE(stats.payload.find("serve.wait_us"), std::string::npos);

    serve::Response bye = client.call(R"({"id":3,"verb":"shutdown"})");
    EXPECT_TRUE(bye.ok);
    server.waitForStop();
    server.stop();

    // The serve-track events render into the timeline under their own
    // track, stamped with request ids.
    obs::ProfileData profile = server.statsProfile(false);
    EXPECT_FALSE(profile.events.empty());
    std::string trace = obs::toChromeTrace(profile);
    EXPECT_NE(trace.find("\"serve\""), std::string::npos);
    EXPECT_NE(trace.find("serve_enqueue"), std::string::npos);
    EXPECT_NE(trace.find("serve_done"), std::string::npos);
}

// ---------------------------------------------------------------------
// The metrics verb and request-scoped tracing.
// ---------------------------------------------------------------------

namespace
{

/** Numeric member of @p v (int- or double-kinded; 0.0 when absent). */
double
num(const serve::JsonValue &v, const char *key)
{
    const serve::JsonValue *m = v.find(key);
    if (m == nullptr)
        return 0.0;
    return m->kind == serve::JsonValue::Kind::Int ?
        static_cast<double>(m->integer) : m->number;
}

} // anonymous namespace

TEST(ServeProto, MetricsVerbAndFormatField)
{
    serve::Request req;
    std::string err;
    ASSERT_TRUE(serve::parseRequest(
        R"({"id":1,"verb":"metrics"})", req, err))
        << err;
    EXPECT_EQ(req.verb, serve::Verb::Metrics);
    EXPECT_EQ(req.format, "json"); // the default

    ASSERT_TRUE(serve::parseRequest(
        R"({"id":2,"verb":"metrics","format":"prometheus"})", req, err))
        << err;
    EXPECT_EQ(req.format, "prometheus");

    // Unknown formats and formats on non-metrics verbs are rejected.
    EXPECT_FALSE(serve::parseRequest(
        R"({"verb":"metrics","format":"xml"})", req, err));
    EXPECT_NE(err.find("format"), std::string::npos);
    EXPECT_FALSE(serve::parseRequest(
        R"({"verb":"run","program":"fib","format":"json"})", req, err));
    EXPECT_NE(err.find("metrics"), std::string::npos);
}

TEST(ServeTimeline, VerbLabelsMatchTheProtocol)
{
    // The timeline exporter keeps its own verb table (obs cannot link
    // against serve); this is the drift guard the header promises.
    for (unsigned i = 0;
         i <= static_cast<unsigned>(serve::Verb::Metrics); ++i)
        EXPECT_STREQ(obs::serveVerbLabel(i),
                     serve::verbName(static_cast<serve::Verb>(i)))
            << "verb index " << i;
    EXPECT_STREQ(obs::serveVerbLabel(
                     static_cast<unsigned>(serve::Verb::Metrics) + 1),
                 "?");
}

TEST(ServeDaemon, MetricsMatchesStatsHistograms)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    for (int id = 1; id <= 6; ++id) {
        serve::Response r = client.call(
            R"({"id":)" + std::to_string(id) +
            R"(,"verb":"run","program":"fib"})");
        ASSERT_TRUE(r.ok) << r.message;
    }

    // The reference values, computed independently from the daemon's
    // own stats histograms (the quiesced daemon cannot change them
    // between the two reads — metrics is a monitoring verb).
    obs::ProfileData stats = server.statsProfile(false);
    const obs::HistogramSnapshot &service =
        stats.histograms.at("serve.service_us");
    const obs::HistogramSnapshot &wait =
        stats.histograms.at("serve.wait_us");
    const obs::HistogramSnapshot &depth =
        stats.histograms.at("serve.queue_depth");
    const double hits =
        static_cast<double>(stats.counters.at("serve.cache.hits"));
    const double misses =
        static_cast<double>(stats.counters.at("serve.cache.misses"));

    serve::Response m = client.call(R"({"id":7,"verb":"metrics"})");
    ASSERT_TRUE(m.ok) << m.message;
    serve::JsonValue doc;
    std::string err;
    ASSERT_TRUE(serve::parseJson(m.payload, doc, err)) << err;
    const serve::JsonValue *life = doc.find("lifetime");
    ASSERT_NE(life, nullptr);

    // The JSON writer renders doubles at 12 significant digits, so
    // the round-tripped value matches to a relative 1e-11.
    auto near = [](double got, double want) {
        EXPECT_NEAR(got, want, 1e-9 + std::fabs(want) * 1e-9);
    };
    const serve::JsonValue *svc = life->find("service_us");
    ASSERT_NE(svc, nullptr);
    near(num(*svc, "p50"), obs::histogramPercentile(service, 0.50));
    near(num(*svc, "p99"), obs::histogramPercentile(service, 0.99));
    EXPECT_EQ(num(*svc, "count"), static_cast<double>(service.count));

    const serve::JsonValue *wsum = life->find("wait_us");
    ASSERT_NE(wsum, nullptr);
    near(num(*wsum, "p50"), obs::histogramPercentile(wait, 0.50));
    near(num(*wsum, "p99"), obs::histogramPercentile(wait, 0.99));

    const serve::JsonValue *qd = life->find("queue_depth");
    ASSERT_NE(qd, nullptr);
    near(num(*qd, "p50"), obs::histogramPercentile(depth, 0.50));
    EXPECT_EQ(num(*qd, "max"), static_cast<double>(depth.max));

    const serve::JsonValue *cache = life->find("cache");
    ASSERT_NE(cache, nullptr);
    // The JSON writer renders doubles at 12 significant digits.
    EXPECT_NEAR(num(*cache, "hit_rate"), hits / (hits + misses), 1e-9);
    EXPECT_EQ(num(*cache, "hits"), hits);

    // Six workload runs; the metrics request itself is excluded.
    EXPECT_EQ(num(*life, "requests"), 6.0);
    EXPECT_EQ(num(*life, "responses"), 6.0);

    server.stop();
}

TEST(ServeDaemon, MetricsIsByteIdenticalAcrossConcurrentClients)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 4;
    serve::Server server(cfg);
    server.start();

    serve::Client warmup(cfg.socketPath);
    ASSERT_TRUE(
        warmup.call(R"({"id":1,"verb":"run","program":"fib"})").ok);
    ASSERT_TRUE(
        warmup.call(R"({"id":2,"verb":"run","program":"fib"})").ok);

    // A quiesced daemon must answer every concurrent metrics request
    // with the same bytes: monitoring verbs stay out of every ledger
    // they report, so observing the daemon does not perturb it.
    constexpr int fanout = 8;
    std::vector<std::string> json(fanout), prom(fanout);
    std::vector<std::thread> threads;
    for (int i = 0; i < fanout; ++i) {
        threads.emplace_back([&, i] {
            serve::Client c(cfg.socketPath);
            serve::Response r = c.call(R"({"id":10,"verb":"metrics"})");
            json[i] = r.ok ? r.payload : ("ERROR: " + r.message);
            serve::Response p = c.call(
                R"({"id":11,"verb":"metrics","format":"prometheus"})");
            prom[i] = p.ok ? p.payload : ("ERROR: " + p.message);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int i = 1; i < fanout; ++i) {
        EXPECT_EQ(json[i], json[0]) << "json response " << i;
        EXPECT_EQ(prom[i], prom[0]) << "prometheus response " << i;
    }
    EXPECT_NE(json[0].find("\"type\":\"metrics\""), std::string::npos);
    EXPECT_NE(prom[0].find("# HELP uhm_serve_requests_total"),
              std::string::npos);
    EXPECT_NE(prom[0].find("uhm_serve_service_seconds{quantile=\"0.5\"}"),
              std::string::npos);

    server.stop();
}

TEST(ServeDaemon, TimelineStitchesPerRequestSpanTrees)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    cfg.sliceCycles = 2000; // a synthetic run takes many slices
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    ASSERT_TRUE(client.call(
        R"({"id":1,"verb":"run","program":"synthetic"})").ok);
    ASSERT_TRUE(client.call(
        R"({"id":2,"verb":"run","program":"synthetic"})").ok);
    server.stop();

    obs::ProfileData profile = server.statsProfile(false);
    // The new per-request events are in the ring...
    bool sawAcquire = false, sawSlice = false;
    for (const obs::Event &e : profile.events) {
        sawAcquire |= e.kind == obs::EventKind::ServeAcquire;
        sawSlice |= e.kind == obs::EventKind::ServeSlice;
    }
    EXPECT_TRUE(sawAcquire);
    EXPECT_TRUE(sawSlice);

    // ...and the exporter stitches them into rid-keyed async trees.
    std::string trace = obs::toChromeTrace(profile);
    EXPECT_NE(trace.find("\"cat\":\"serve.request\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"e\""), std::string::npos);
    for (const char *name :
         {"\"name\":\"request\"", "\"name\":\"wait\"",
          "\"name\":\"acquire\"", "\"name\":\"slice\"",
          "\"name\":\"reply\""})
        EXPECT_NE(trace.find(name), std::string::npos) << name;
    // Both requests appear as distinct async ids.
    EXPECT_NE(trace.find("\"id\":\"1\""), std::string::npos);
    EXPECT_NE(trace.find("\"id\":\"2\""), std::string::npos);
    // The run verb and the session tag ride on the request root.
    EXPECT_NE(trace.find("\"verb\":\"run\""), std::string::npos);
    EXPECT_NE(trace.find("\"session\":"), std::string::npos);
}

TEST(ServeDaemon, EventDropRateIsSurfaced)
{
    serve::ServerConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    cfg.eventCapacity = 4; // tiny ring: one run must overflow it
    serve::Server server(cfg);
    server.start();

    serve::Client client(cfg.socketPath);
    ASSERT_TRUE(
        client.call(R"({"id":1,"verb":"run","program":"fib"})").ok);

    serve::Response m = client.call(R"({"id":2,"verb":"metrics"})");
    ASSERT_TRUE(m.ok) << m.message;
    serve::JsonValue doc;
    std::string err;
    ASSERT_TRUE(serve::parseJson(m.payload, doc, err)) << err;
    const serve::JsonValue *events = doc.find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(num(*events, "dropped"), 0.0);
    EXPECT_GT(num(*events, "drop_rate"), 0.0);

    // The stats profile carries the same rate as a ratio row.
    obs::ProfileData stats = server.statsProfile(false);
    bool found = false;
    for (const auto &[name, value] : stats.ratios) {
        if (name == "events.drop_rate") {
            found = true;
            EXPECT_GT(value, 0.0);
        }
    }
    EXPECT_TRUE(found);

    server.stop();
}
