/**
 * @file
 * Tests for the thread pool, its sharded work queue, and the
 * deterministic observability merge — including stress cases meant to
 * run under ThreadSanitizer (the CI tsan job builds exactly this file
 * plus sweep_test with -fsanitize=thread).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/counter.hh"
#include "obs/merge.hh"
#include "obs/registry.hh"
#include "support/json.hh"
#include "support/pool.hh"

namespace uhm
{
namespace
{

// ---- the pool --------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&sum] { sum.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, ParallelForTouchesEachIndexExactlyOnce)
{
    ThreadPool pool(8);
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> touched(n);
    parallelFor(pool, n, [&](size_t i) { touched[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleWorkerStillDrainsTheQueue)
{
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    parallelFor(pool, 50, [&](size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> sum{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&sum] { sum.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(sum.load(), (wave + 1) * 20);
    }
}

TEST(ThreadPool, WaitWithNothingSubmittedReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    ThreadPool pool(16);
    std::atomic<int> sum{0};
    parallelFor(pool, 3, [&](size_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 3);
}

/**
 * Stealing stress: many tiny tasks plus a few long ones, so workers
 * with empty shards must steal from loaded ones. Run under TSan this
 * exercises every lock pairing in the pool.
 */
TEST(ThreadPool, StressSkewedTaskMix)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> work{0};
    constexpr int tasks = 5000;
    for (int i = 0; i < tasks; ++i) {
        int spin = i % 97 == 0 ? 5000 : 10;
        pool.submit([&work, spin] {
            uint64_t local = 0;
            for (int s = 0; s < spin; ++s)
                local += static_cast<uint64_t>(s);
            work.fetch_add(local == 0 ? 1 : 1);
        });
    }
    pool.wait();
    EXPECT_EQ(work.load(), static_cast<uint64_t>(tasks));
}

/** Per-worker isolated state plus a post-wait merge: the sweep shape. */
TEST(ThreadPool, IndexAddressedResultsNeedNoLocks)
{
    ThreadPool pool(8);
    constexpr size_t n = 256;
    std::vector<uint64_t> results(n, 0);
    parallelFor(pool, n, [&](size_t i) {
        results[i] = i * i; // each task owns exactly one slot
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(results[i], i * i);
}

// ---- deterministic merges --------------------------------------------------

TEST(ObsMerge, CounterSnapshotsSumPerName)
{
    std::map<std::string, uint64_t> a = {{"dtb.hits", 3},
                                         {"dtb.misses", 1}};
    std::map<std::string, uint64_t> b = {{"dtb.hits", 2},
                                         {"icache.hits", 7}};
    obs::mergeCounterSnapshots(a, b);
    EXPECT_EQ(a.at("dtb.hits"), 5u);
    EXPECT_EQ(a.at("dtb.misses"), 1u);
    EXPECT_EQ(a.at("icache.hits"), 7u);
}

TEST(ObsMerge, MergedCountersAccumulateRegistries)
{
    obs::Counter hits1, hits2;
    hits1 += 10;
    hits2 += 32;
    obs::Registry r1, r2;
    r1.add("dtb.hits", hits1);
    r2.add("dtb.hits", hits2);

    obs::MergedCounters merged;
    merged.accumulate(r1);
    merged.accumulate(r2);
    EXPECT_EQ(merged.shards(), 2u);
    EXPECT_EQ(merged.get("dtb.hits"), 42u);
    EXPECT_EQ(merged.get("dtb.misses"), 0u);

    JsonWriter jw;
    merged.writeJson(jw);
    EXPECT_EQ(jw.str(), "{\"dtb.hits\":42}");
}

TEST(ObsMerge, MergeOrderIndependentForCounters)
{
    std::map<std::string, uint64_t> x = {{"a", 1}, {"b", 2}};
    std::map<std::string, uint64_t> y = {{"b", 5}, {"c", 3}};

    obs::MergedCounters forward, backward;
    forward.accumulate(x);
    forward.accumulate(y);
    backward.accumulate(y);
    backward.accumulate(x);
    EXPECT_EQ(forward.values(), backward.values());
}

TEST(ObsMerge, EventStreamsMergeByCycleThenShard)
{
    using obs::Event;
    using obs::EventKind;
    std::vector<std::vector<Event>> shards(3);
    shards[0] = {{10, 100, 0, EventKind::DtbMiss},
                 {30, 101, 0, EventKind::DtbHit}};
    shards[1] = {{10, 200, 0, EventKind::Fetch},
                 {20, 201, 0, EventKind::Decode}};
    shards[2] = {};

    std::vector<Event> merged = obs::mergeEventStreams(shards);
    ASSERT_EQ(merged.size(), 4u);
    // Cycle 10 tie: shard 0 before shard 1.
    EXPECT_EQ(merged[0].addr, 100u);
    EXPECT_EQ(merged[1].addr, 200u);
    EXPECT_EQ(merged[2].addr, 201u);
    EXPECT_EQ(merged[3].addr, 101u);
}

TEST(ObsMerge, EventMergePreservesInShardOrderOnEqualCycles)
{
    using obs::Event;
    using obs::EventKind;
    std::vector<std::vector<Event>> shards(1);
    for (uint64_t i = 0; i < 5; ++i)
        shards[0].push_back({7, i, 0, EventKind::Fetch});
    std::vector<Event> merged = obs::mergeEventStreams(shards);
    ASSERT_EQ(merged.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(merged[i].addr, i);
}

TEST(ObsMerge, EventMergeMatchesBruteForceReference)
{
    using obs::Event;
    using obs::EventKind;
    // Adversarial shards: many equal cycle stamps across shards, some
    // empty shards, non-uniform lengths. Deterministic LCG so the case
    // is reproducible.
    uint64_t state = 1978;
    auto next = [&state] {
        state = state * 6364136223846793005u + 1442695040888963407u;
        return state >> 33;
    };
    std::vector<std::vector<Event>> shards(7);
    for (size_t sh = 0; sh < shards.size(); ++sh) {
        size_t n = sh == 3 ? 0 : 20 + next() % 30;
        uint64_t cycle = 0;
        for (size_t i = 0; i < n; ++i) {
            cycle += next() % 3; // frequent ties, in and across shards
            // addr encodes (shard, in-shard index) so the expected
            // order is checkable from the merged stream alone.
            shards[sh].push_back(Event{cycle, sh * 1000 + i, 0,
                                       EventKind::Fetch});
        }
    }

    // Reference: flatten in shard order, then stable-sort by cycle.
    // Stability turns "shard order in, shard order out" into exactly
    // the documented tie-break (shard index, then in-shard order).
    std::vector<Event> expected;
    for (const auto &shard : shards)
        expected.insert(expected.end(), shard.begin(), shard.end());
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Event &a, const Event &b) {
                         return a.cycle < b.cycle;
                     });

    std::vector<Event> merged = obs::mergeEventStreams(shards);
    ASSERT_EQ(merged.size(), expected.size());
    for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].cycle, expected[i].cycle);
        EXPECT_EQ(merged[i].addr, expected[i].addr);
    }
}

TEST(ObsMerge, MergedHistogramsAccumulateSnapshots)
{
    obs::Histogram a, b;
    a.record(4);
    a.record(5);
    b.record(1000);

    obs::MergedHistograms merged;
    merged.accumulate({{"translate.latency_cycles", a.snapshot()}});
    merged.accumulate({{"translate.latency_cycles", b.snapshot()},
                       {"dtb.residency_cycles", a.snapshot()}});
    EXPECT_EQ(merged.shards(), 2u);

    obs::HistogramSnapshot lat =
        merged.get("translate.latency_cycles");
    EXPECT_EQ(lat.count, 3u);
    EXPECT_EQ(lat.sum, 1009u);
    EXPECT_EQ(lat.min, 4u);
    EXPECT_EQ(lat.max, 1000u);
    // Absent names appear; never-seen names come back empty.
    EXPECT_EQ(merged.get("dtb.residency_cycles").count, 2u);
    EXPECT_EQ(merged.get("absent").count, 0u);
    // The merged map is name-ordered, independent of arrival order.
    ASSERT_EQ(merged.values().size(), 2u);
    EXPECT_EQ(merged.values().begin()->first, "dtb.residency_cycles");

    JsonWriter jw;
    merged.writeJson(jw);
    EXPECT_NE(jw.str().find("\"translate.latency_cycles\":{\"count\":3"),
              std::string::npos);
}

TEST(ObsMerge, EmptyInputsMergeToEmpty)
{
    EXPECT_TRUE(obs::mergeEventStreams({}).empty());
    EXPECT_TRUE(obs::mergeEventStreams({{}, {}}).empty());
    obs::MergedCounters merged;
    EXPECT_EQ(merged.shards(), 0u);
    EXPECT_TRUE(merged.values().empty());
}

} // anonymous namespace
} // namespace uhm
