/**
 * @file
 * Tests for the workload module: sample-program integrity and the
 * synthetic DIR generator's determinism, validity and locality knobs.
 */

#include <gtest/gtest.h>

#include <set>

#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm::workload
{
namespace
{

// ---- samples ---------------------------------------------------------------

TEST(Samples, AtLeastTenDistinctPrograms)
{
    const auto &samples = samplePrograms();
    EXPECT_GE(samples.size(), 10u);
    std::set<std::string> names;
    for (const auto &s : samples) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_FALSE(s.source.empty());
        names.insert(s.name);
    }
    EXPECT_EQ(names.size(), samples.size());
}

TEST(Samples, LookupByNameWorksAndUnknownIsFatal)
{
    EXPECT_EQ(sampleByName("sieve").name, "sieve");
    EXPECT_THROW(sampleByName("no-such-sample"), FatalError);
}

TEST(Samples, ExpectedOutputsAreDeclaredForAnchors)
{
    for (const char *name : {"sieve", "fib", "ack", "gcd", "collatz",
                             "queens", "nest"}) {
        EXPECT_FALSE(sampleByName(name).expected.empty()) << name;
    }
}

// ---- synthetic generator ---------------------------------------------------

TEST(Synthetic, ValidatesAndIsDeterministic)
{
    SyntheticConfig cfg;
    cfg.seed = 7;
    DirProgram a = generateSynthetic(cfg);
    DirProgram b = generateSynthetic(cfg);
    EXPECT_EQ(a.instrs.size(), b.instrs.size());
    for (size_t i = 0; i < a.instrs.size(); ++i)
        EXPECT_EQ(a.instrs[i], b.instrs[i]);
}

TEST(Synthetic, DifferentSeedsProduceDifferentBodies)
{
    SyntheticConfig cfg;
    cfg.seed = 1;
    DirProgram a = generateSynthetic(cfg);
    cfg.seed = 2;
    DirProgram b = generateSynthetic(cfg);
    bool differs = a.instrs.size() != b.instrs.size();
    for (size_t i = 0; !differs && i < a.instrs.size(); ++i)
        differs = !(a.instrs[i] == b.instrs[i]);
    EXPECT_TRUE(differs);
}

TEST(Synthetic, SizeScalesWithKnobs)
{
    SyntheticConfig small_cfg;
    small_cfg.numLoops = 2;
    small_cfg.bodyInstrs = 10;
    SyntheticConfig big_cfg;
    big_cfg.numLoops = 16;
    big_cfg.bodyInstrs = 60;
    EXPECT_LT(generateSynthetic(small_cfg).size() * 5,
              generateSynthetic(big_cfg).size());
}

TEST(Synthetic, RunsIdenticallyOnAllMachineKinds)
{
    SyntheticConfig cfg;
    cfg.numLoops = 3;
    cfg.iterations = 20;
    cfg.seed = 77;
    DirProgram prog = generateSynthetic(cfg);

    std::vector<std::vector<int64_t>> outputs;
    for (MachineKind kind : {MachineKind::Conventional,
                             MachineKind::Cached, MachineKind::Dtb}) {
        MachineConfig mc;
        mc.kind = kind;
        outputs.push_back(
            runProgram(prog, EncodingScheme::Huffman, mc).output);
    }
    EXPECT_EQ(outputs[0], outputs[1]);
    EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(Synthetic, OutputIndependentOfEncoding)
{
    SyntheticConfig cfg;
    cfg.seed = 123;
    cfg.iterations = 10;
    DirProgram prog = generateSynthetic(cfg);
    MachineConfig mc;
    mc.kind = MachineKind::Dtb;
    std::vector<int64_t> reference =
        runProgram(prog, EncodingScheme::Expanded, mc).output;
    for (EncodingScheme scheme : allEncodingSchemes())
        EXPECT_EQ(runProgram(prog, scheme, mc).output, reference);
}

TEST(Synthetic, WorkingSetSizeControlsDtbHitRatio)
{
    // A body that fits in the DTB re-hits every iteration; a much
    // larger instruction working set cycles through and thrashes.
    SyntheticConfig tight;
    tight.numLoops = 1;
    tight.bodyInstrs = 30;
    tight.iterations = 200;
    tight.seed = 5;

    SyntheticConfig sprawling;
    sprawling.numLoops = 40;
    sprawling.bodyInstrs = 60;
    sprawling.iterations = 2;
    sprawling.outerRepeats = 10;
    sprawling.seed = 5;

    MachineConfig mc;
    mc.kind = MachineKind::Dtb;
    mc.dtb.capacityBytes = 2048;

    RunResult tight_run = runProgram(
        generateSynthetic(tight), EncodingScheme::Huffman, mc);
    RunResult sprawl_run = runProgram(
        generateSynthetic(sprawling), EncodingScheme::Huffman, mc);
    EXPECT_GT(tight_run.dtbHitRatio, 0.95);
    EXPECT_LT(sprawl_run.dtbHitRatio, tight_run.dtbHitRatio - 0.05);
}

TEST(Synthetic, SemworkKnobRaisesMeasuredX)
{
    SyntheticConfig lean;
    lean.semworkDensity = 0.0;
    lean.iterations = 30;
    lean.seed = 9;
    SyntheticConfig heavy = lean;
    heavy.semworkDensity = 0.5;
    heavy.semworkWeight = 20;

    MachineConfig mc;
    mc.kind = MachineKind::Conventional;
    RunResult lean_run = runProgram(
        generateSynthetic(lean), EncodingScheme::Packed, mc);
    RunResult heavy_run = runProgram(
        generateSynthetic(heavy), EncodingScheme::Packed, mc);
    EXPECT_GT(heavy_run.measuredX, lean_run.measuredX * 1.5);
}

TEST(Synthetic, RejectsDegenerateConfigs)
{
    SyntheticConfig cfg;
    cfg.numGlobals = 2;
    EXPECT_THROW(generateSynthetic(cfg), PanicError);
    cfg = SyntheticConfig{};
    cfg.numLoops = 0;
    EXPECT_THROW(generateSynthetic(cfg), PanicError);
}

} // anonymous namespace
} // namespace uhm::workload
