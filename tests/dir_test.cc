/**
 * @file
 * Tests for the DIR level: ISA metadata, program validation and all
 * five encodings (round-trip, addressing, size ordering, decode costs).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dir/encoding.hh"
#include "support/huffman.hh"
#include "dir/isa.hh"
#include "dir/program.hh"
#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

/** A small hand-built program touching several operand kinds. */
DirProgram
tinyProgram()
{
    DirProgram p;
    p.name = "tiny";
    p.numGlobals = 4;
    Contour main_ctr;
    main_ctr.name = "<main>";
    main_ctr.depth = 1;
    main_ctr.slotsAtDepth = {4, 0};
    p.contours.push_back(main_ctr);

    auto emit = [&](DirInstruction ins) {
        p.instrs.push_back(ins);
        p.contourOf.push_back(0);
        return p.instrs.size() - 1;
    };
    p.entry = emit({Op::ENTER, 1, 0, 0});
    emit({Op::PUSHC, 7});
    emit({Op::STOREL, 0, 0});
    emit({Op::PUSHL, 0, 0});
    emit({Op::PUSHC, -3});
    emit({Op::ADD});
    emit({Op::WRITE});
    emit({Op::PUSHC, 0});
    emit({Op::JZ, 10});
    emit({Op::NOP});
    emit({Op::HALT});
    p.contours[0].entry = p.entry;
    return p;
}

// ---- ISA metadata ----------------------------------------------------------

TEST(Isa, EveryOpcodeHasMetadata)
{
    for (size_t i = 0; i < numOps; ++i) {
        Op op = static_cast<Op>(i);
        EXPECT_NE(opName(op), nullptr);
        EXPECT_STRNE(opName(op), "");
        EXPECT_LE(opArity(op), 4u);
    }
}

TEST(Isa, ControlTransferClassification)
{
    EXPECT_TRUE(isControlTransfer(Op::JMP));
    EXPECT_TRUE(isControlTransfer(Op::JZ));
    EXPECT_TRUE(isControlTransfer(Op::JNZ));
    EXPECT_TRUE(isControlTransfer(Op::CALLP));
    EXPECT_TRUE(isControlTransfer(Op::RET));
    EXPECT_TRUE(isControlTransfer(Op::HALT));
    EXPECT_FALSE(isControlTransfer(Op::ADD));
    EXPECT_FALSE(isControlTransfer(Op::PUSHL));
    EXPECT_FALSE(isControlTransfer(Op::ENTER));
}

TEST(Isa, StackDeltas)
{
    EXPECT_EQ(opInfo(Op::PUSHC).stackDelta, 1);
    EXPECT_EQ(opInfo(Op::ADD).stackDelta, -1);
    EXPECT_EQ(opInfo(Op::STOREI).stackDelta, -2);
    EXPECT_EQ(opInfo(Op::DUP).stackDelta, 1);
    EXPECT_EQ(opInfo(Op::NOP).stackDelta, 0);
}

TEST(Isa, InstructionToString)
{
    EXPECT_EQ(DirInstruction(Op::PUSHL, 1, 3).toString(), "PUSHL 1 3");
    EXPECT_EQ(DirInstruction(Op::ADD).toString(), "ADD");
    EXPECT_EQ(DirInstruction(Op::PUSHC, -42).toString(), "PUSHC -42");
}

// ---- program validation ----------------------------------------------------

TEST(Program, TinyProgramValidates)
{
    EXPECT_NO_THROW(tinyProgram().validate());
}

TEST(Program, OutOfBoundsTargetPanics)
{
    DirProgram p = tinyProgram();
    p.instrs[8].operands[0] = 999;
    EXPECT_THROW(p.validate(), PanicError);
}

TEST(Program, OutOfBoundsSlotPanics)
{
    DirProgram p = tinyProgram();
    p.instrs[2] = {Op::STOREL, 0, 4}; // only slots 0..3 exist
    EXPECT_THROW(p.validate(), PanicError);
}

TEST(Program, OutOfBoundsDepthPanics)
{
    DirProgram p = tinyProgram();
    p.instrs[3] = {Op::PUSHL, 2, 0}; // main is depth 1
    EXPECT_THROW(p.validate(), PanicError);
}

TEST(Program, BadProcIndexPanics)
{
    DirProgram p = tinyProgram();
    p.instrs[9] = {Op::CALLP, 0}; // no procedures declared
    EXPECT_THROW(p.validate(), PanicError);
}

TEST(Program, ContourTableMismatchPanics)
{
    DirProgram p = tinyProgram();
    p.contours[0].slotsAtDepth = {4}; // wrong arity
    EXPECT_THROW(p.validate(), PanicError);
}

TEST(Program, OperandMaxima)
{
    DirProgram p = tinyProgram();
    auto maxima = p.operandMaxima();
    // Largest immediate is 7 -> zigzag 14.
    EXPECT_EQ(maxima[static_cast<size_t>(OperandKind::Imm)], 14u);
    EXPECT_EQ(maxima[static_cast<size_t>(OperandKind::Target)], 10u);
}

TEST(Program, DisassembleMentionsOpcodesAndName)
{
    DirProgram p = tinyProgram();
    std::string dis = p.disassemble();
    EXPECT_NE(dis.find("tiny"), std::string::npos);
    EXPECT_NE(dis.find("PUSHC"), std::string::npos);
    EXPECT_NE(dis.find("HALT"), std::string::npos);
}

TEST(Program, MaxDepth)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("nest").source);
    EXPECT_EQ(p.maxDepth(), 3u); // main(1) / outer(2) / inner(3)
}

// ---- encodings -------------------------------------------------------------

struct EncodingCase
{
    const char *programName;
    EncodingScheme scheme;
};

std::string
encodingCaseName(const ::testing::TestParamInfo<EncodingCase> &info)
{
    std::string name = std::string(info.param.programName) + "_" +
        encodingName(info.param.scheme);
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

DirProgram
programByName(const std::string &name)
{
    if (name == "tiny")
        return tinyProgram();
    if (name == "synthetic") {
        workload::SyntheticConfig cfg;
        cfg.seed = 99;
        return workload::generateSynthetic(cfg);
    }
    return hlr::compileSource(workload::sampleByName(name).source);
}

class EncodingRoundTrip : public ::testing::TestWithParam<EncodingCase>
{};

TEST_P(EncodingRoundTrip, DecodeRecoversEveryInstruction)
{
    DirProgram prog = programByName(GetParam().programName);
    auto image = encodeDir(prog, GetParam().scheme);
    ASSERT_EQ(image->numInstrs(), prog.size());
    for (size_t i = 0; i < prog.size(); ++i) {
        DecodeResult res = image->decodeAt(image->bitAddrOf(i));
        EXPECT_EQ(res.instr, prog.instrs[i]) << "at index " << i;
        EXPECT_EQ(res.index, i);
    }
}

TEST_P(EncodingRoundTrip, SequentialDecodeChainsAddresses)
{
    DirProgram prog = programByName(GetParam().programName);
    auto image = encodeDir(prog, GetParam().scheme);
    uint64_t addr = 0;
    for (size_t i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(addr, image->bitAddrOf(i));
        DecodeResult res = image->decodeAt(addr);
        addr = res.nextBitAddr;
    }
    EXPECT_EQ(addr, image->bitSize());
}

TEST_P(EncodingRoundTrip, IndexOfBitAddrIsInverse)
{
    DirProgram prog = programByName(GetParam().programName);
    auto image = encodeDir(prog, GetParam().scheme);
    for (size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(image->indexOfBitAddr(image->bitAddrOf(i)), i);
}

TEST_P(EncodingRoundTrip, DecodeCostsArePositive)
{
    DirProgram prog = programByName(GetParam().programName);
    auto image = encodeDir(prog, GetParam().scheme);
    for (size_t i = 0; i < prog.size(); ++i) {
        DecodeResult res = image->decodeAt(image->bitAddrOf(i));
        EXPECT_GT(res.cost.total(), 0u);
    }
}

std::vector<EncodingCase>
allEncodingCases()
{
    std::vector<EncodingCase> cases;
    for (const char *name : {"tiny", "synthetic", "sieve", "fib",
                             "qsort", "nest"}) {
        for (EncodingScheme scheme : allEncodingSchemes())
            cases.push_back({name, scheme});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(ProgramsAndSchemes, EncodingRoundTrip,
                         ::testing::ValuesIn(allEncodingCases()),
                         encodingCaseName);

class EncodingSizes : public ::testing::TestWithParam<const char *>
{};

TEST_P(EncodingSizes, OrderingMatchesDegreeOfEncoding)
{
    DirProgram prog = programByName(GetParam());
    auto expanded = encodeDir(prog, EncodingScheme::Expanded);
    auto packed = encodeDir(prog, EncodingScheme::Packed);
    auto contextual = encodeDir(prog, EncodingScheme::Contextual);
    auto huffman = encodeDir(prog, EncodingScheme::Huffman);
    auto pair = encodeDir(prog, EncodingScheme::PairHuffman);

    // The paper's Figure 1: program size falls as encoding deepens.
    EXPECT_LT(packed->bitSize(), expanded->bitSize());
    EXPECT_LE(contextual->bitSize(), packed->bitSize());
    EXPECT_LT(huffman->bitSize(), packed->bitSize());
    // Pair-context coding beats single-symbol coding up to integer-code
    // granularity; allow 5% slack.
    EXPECT_LE(static_cast<double>(pair->bitSize()),
              static_cast<double>(huffman->bitSize()) * 1.05);
}

TEST_P(EncodingSizes, MetadataGrowsWithEncodingDegree)
{
    DirProgram prog = programByName(GetParam());
    auto expanded = encodeDir(prog, EncodingScheme::Expanded);
    auto huffman = encodeDir(prog, EncodingScheme::Huffman);
    auto pair = encodeDir(prog, EncodingScheme::PairHuffman);
    EXPECT_EQ(expanded->metadataBits(), 0u);
    EXPECT_GT(huffman->metadataBits(), 0u);
    EXPECT_GT(pair->metadataBits(), huffman->metadataBits());
}

INSTANTIATE_TEST_SUITE_P(Programs, EncodingSizes,
                         ::testing::Values("tiny", "synthetic", "sieve",
                                           "fib", "qsort", "matmul",
                                           "queens"));

TEST(Encoding, ExpandedCostIsOnePerField)
{
    DirProgram p = tinyProgram();
    auto image = encodeDir(p, EncodingScheme::Expanded);
    for (size_t i = 0; i < p.size(); ++i) {
        DecodeResult res = image->decodeAt(image->bitAddrOf(i));
        EXPECT_EQ(res.cost.fieldExtracts, 1 + opArity(p.instrs[i].op));
        EXPECT_EQ(res.cost.treeEdges, 0u);
        EXPECT_EQ(res.cost.tableLookups, 0u);
    }
}

TEST(Encoding, HuffmanChargesTreeEdges)
{
    DirProgram p = tinyProgram();
    auto image = encodeDir(p, EncodingScheme::Huffman);
    uint64_t total_edges = 0;
    for (size_t i = 0; i < p.size(); ++i)
        total_edges += image->decodeAt(image->bitAddrOf(i)).cost.treeEdges;
    EXPECT_GT(total_edges, 0u);
}

TEST(Encoding, ContextualChargesTableLookups)
{
    DirProgram p = tinyProgram();
    auto image = encodeDir(p, EncodingScheme::Contextual);
    // PUSHL has depth+slot fields -> contour width lookups.
    DecodeResult res = image->decodeAt(image->bitAddrOf(3));
    EXPECT_EQ(res.instr.op, Op::PUSHL);
    EXPECT_GE(res.cost.tableLookups, 2u);
}

TEST(Encoding, MisalignedAddressPanics)
{
    DirProgram p = tinyProgram();
    auto image = encodeDir(p, EncodingScheme::Packed);
    EXPECT_THROW(image->indexOfBitAddr(image->bitAddrOf(1) + 1),
                 PanicError);
}

TEST(Encoding, NamesAreDistinct)
{
    std::set<std::string> names;
    for (EncodingScheme s : allEncodingSchemes())
        names.insert(encodingName(s));
    EXPECT_EQ(names.size(), numEncodingSchemes);
}

// ---- tree vs. table decode bit-exactness -----------------------------------

/** Field-by-field DecodeResult equality with a readable failure label. */
void
expectSameDecode(const DecodeResult &a, const DecodeResult &b,
                 const char *what, const char *scheme,
                 const std::string &program, size_t i)
{
    std::string where = std::string(what) + " " + scheme + "/" +
                        program + " instr " + std::to_string(i);
    EXPECT_EQ(a.instr.op, b.instr.op) << where;
    EXPECT_EQ(a.instr.operands, b.instr.operands) << where;
    EXPECT_EQ(a.nextBitAddr, b.nextBitAddr) << where;
    EXPECT_EQ(a.index, b.index) << where;
    EXPECT_EQ(a.cost.fieldExtracts, b.cost.fieldExtracts) << where;
    EXPECT_EQ(a.cost.treeEdges, b.cost.treeEdges) << where;
    EXPECT_EQ(a.cost.tableLookups, b.cost.tableLookups) << where;
}

/**
 * The table-driven decoder must be bit-exact with the tree walk — same
 * instruction stream AND same simulated decode costs — over the whole
 * sample corpus, under every encoding scheme, through both the per-call
 * decodeAt() and the bulk decodeAll() entry points.
 */
TEST(Encoding, TreeAndTableDecodersAreBitExact)
{
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        for (EncodingScheme scheme : allEncodingSchemes()) {
            auto image = encodeDir(prog, scheme);
            const char *name = encodingName(scheme);

            std::vector<DecodeResult> tree_all, table_all;
            {
                ScopedHuffmanDecodeKind kind(HuffmanDecodeKind::Tree);
                image->decodeAll(tree_all);
            }
            {
                ScopedHuffmanDecodeKind kind(HuffmanDecodeKind::Table);
                image->decodeAll(table_all);
            }
            ASSERT_EQ(tree_all.size(), image->numInstrs());
            ASSERT_EQ(table_all.size(), tree_all.size());

            for (size_t i = 0; i < tree_all.size(); ++i) {
                expectSameDecode(table_all[i], tree_all[i],
                                 "decodeAll", name, sample.name, i);
                // The per-call path must agree with the bulk path.
                ScopedHuffmanDecodeKind kind(HuffmanDecodeKind::Table);
                DecodeResult at = image->decodeAt(image->bitAddrOf(i));
                expectSameDecode(at, tree_all[i], "decodeAt", name,
                                 sample.name, i);
            }
        }
    }
}

TEST(Encoding, HuffmanCompactionIsSubstantial)
{
    // The Wilner/Hehner claim: encoded programs are 25-75% smaller than
    // the expanded form. Our Huffman images should compress at least 4x
    // against full-word expansion.
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("sieve").source);
    auto expanded = encodeDir(prog, EncodingScheme::Expanded);
    auto huffman = encodeDir(prog, EncodingScheme::Huffman);
    EXPECT_LT(huffman->bitSize() * 4, expanded->bitSize());
}

} // anonymous namespace
} // namespace uhm
