/**
 * @file
 * Tests for the memory substrate: two-level main memory, replacement
 * policies and the set-associative cache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/memory.hh"
#include "mem/replacement.hh"
#include "support/logging.hh"

namespace uhm
{
namespace
{

// ---- main memory -----------------------------------------------------------

TEST(MainMemory, ReadWriteRoundTrip)
{
    MainMemory mem(64, MemTiming{});
    mem.write(10, -5);
    mem.write(100, 77);
    EXPECT_EQ(mem.read(10), -5);
    EXPECT_EQ(mem.read(100), 77);
    EXPECT_EQ(mem.read(50), 0); // untouched words read as zero
}

TEST(MainMemory, LevelChargingFollowsBoundary)
{
    MemTiming timing{1, 10, 2};
    MainMemory mem(64, timing);
    mem.write(0, 1);   // level 1: +1
    mem.read(63);      // level 1: +1
    mem.read(64);      // level 2: +10
    mem.write(1000, 2);// level 2: +10
    EXPECT_EQ(mem.cycles(), 22u);
    EXPECT_EQ(mem.stats().get("mem_level1_accesses"), 2u);
    EXPECT_EQ(mem.stats().get("mem_level2_accesses"), 2u);
}

TEST(MainMemory, PeekAndPokeAreFree)
{
    MainMemory mem(64, MemTiming{});
    mem.poke(5, 42);
    EXPECT_EQ(mem.peek(5), 42);
    EXPECT_EQ(mem.cycles(), 0u);
}

TEST(MainMemory, ResetStatsKeepsContents)
{
    MainMemory mem(64, MemTiming{});
    mem.write(3, 9);
    mem.resetStats();
    EXPECT_EQ(mem.cycles(), 0u);
    EXPECT_EQ(mem.peek(3), 9);
}

TEST(MainMemory, IsLevel1Boundary)
{
    MainMemory mem(128, MemTiming{});
    EXPECT_TRUE(mem.isLevel1(0));
    EXPECT_TRUE(mem.isLevel1(127));
    EXPECT_FALSE(mem.isLevel1(128));
}

// ---- replacement -----------------------------------------------------------

TEST(Replacement, LruEvictsLeastRecentlyUsed)
{
    ReplacementSet set(4, ReplPolicy::LRU, nullptr);
    set.fill(0);
    set.fill(1);
    set.fill(2);
    set.fill(3);
    EXPECT_EQ(set.victim(), 0u);
    set.touch(0);          // 1 is now LRU
    EXPECT_EQ(set.victim(), 1u);
    set.touch(1);
    set.touch(2);
    EXPECT_EQ(set.victim(), 3u);
}

TEST(Replacement, FifoIgnoresTouches)
{
    ReplacementSet set(3, ReplPolicy::FIFO, nullptr);
    set.fill(0);
    set.fill(1);
    set.fill(2);
    set.touch(0);
    set.touch(0);
    EXPECT_EQ(set.victim(), 0u); // first in, first out regardless
}

TEST(Replacement, RandomVictimsAreValidWays)
{
    Rng rng(3);
    ReplacementSet set(4, ReplPolicy::Random, &rng);
    bool saw[4] = {};
    for (int i = 0; i < 200; ++i) {
        unsigned v = set.victim();
        ASSERT_LT(v, 4u);
        saw[v] = true;
    }
    EXPECT_TRUE(saw[0] && saw[1] && saw[2] && saw[3]);
}

TEST(Replacement, RandomWithoutRngPanics)
{
    EXPECT_THROW(ReplacementSet(4, ReplPolicy::Random, nullptr),
                 PanicError);
}

TEST(Replacement, PolicyNames)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "lru");
    EXPECT_STREQ(replPolicyName(ReplPolicy::FIFO), "fifo");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "random");
}

// ---- cache -----------------------------------------------------------------

CacheConfig
smallCache(unsigned assoc)
{
    CacheConfig cfg;
    cfg.capacityBytes = 64; // 8 lines of 8 bytes
    cfg.lineBytes = 8;
    cfg.assoc = assoc;
    return cfg;
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(smallCache(2));
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(7));  // same line
    EXPECT_FALSE(cache.access(8)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 8 lines, 2-way -> 4 sets; line addresses with equal (line % 4)
    // collide. Lines 0, 4, 8 all map to set 0.
    SetAssocCache cache(smallCache(2));
    EXPECT_FALSE(cache.access(0 * 8));
    EXPECT_FALSE(cache.access(4 * 8));
    EXPECT_TRUE(cache.access(0 * 8));  // touch 0: 4 becomes LRU
    EXPECT_FALSE(cache.access(8 * 8)); // evicts 4
    EXPECT_TRUE(cache.access(0 * 8));
    EXPECT_FALSE(cache.access(4 * 8)); // 4 was evicted
}

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    CacheConfig cfg = smallCache(0); // fully associative
    SetAssocCache cache(cfg);
    EXPECT_EQ(cache.numSets(), 1u);
    EXPECT_EQ(cache.assoc(), 8u);
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_FALSE(cache.access(line * 8));
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_TRUE(cache.access(line * 8));
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssocCache cache(smallCache(2));
    cache.access(0);
    cache.flush();
    EXPECT_FALSE(cache.access(0));
}

TEST(Cache, LoopingTraceHitRatioImprovesWithCapacity)
{
    // A loop over 32 lines: an 8-line cache thrashes, a 64-line cache
    // holds the whole loop.
    CacheConfig small_cfg;
    small_cfg.capacityBytes = 8 * 8;
    small_cfg.lineBytes = 8;
    small_cfg.assoc = 4;
    CacheConfig big_cfg = small_cfg;
    big_cfg.capacityBytes = 64 * 8;

    SetAssocCache small(small_cfg), big(big_cfg);
    for (int pass = 0; pass < 10; ++pass) {
        for (uint64_t line = 0; line < 32; ++line) {
            small.access(line * 8);
            big.access(line * 8);
        }
    }
    EXPECT_LT(small.hitRatio(), 0.5);
    EXPECT_GT(big.hitRatio(), 0.85);
}

TEST(Cache, BadGeometryPanics)
{
    CacheConfig cfg;
    cfg.capacityBytes = 4;
    cfg.lineBytes = 8;
    EXPECT_THROW(SetAssocCache{cfg}, PanicError);

    cfg = smallCache(16); // more ways than lines
    EXPECT_THROW(SetAssocCache{cfg}, PanicError);
}

class CacheAssocSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CacheAssocSweep, ConflictTraceBenefitsFromAssociativity)
{
    // Two interleaved streams that collide in a direct-mapped cache.
    CacheConfig cfg;
    cfg.capacityBytes = 32 * 8;
    cfg.lineBytes = 8;
    cfg.assoc = GetParam();
    SetAssocCache cache(cfg);
    uint64_t sets = cache.numSets();
    for (int pass = 0; pass < 50; ++pass) {
        cache.access(0);
        cache.access(sets * 8);     // same set as 0 when assoc >= 1
        cache.access(2 * sets * 8); // same set again
    }
    if (cfg.assoc <= 2) {
        // Three conflicting lines cycling through <=2 ways under LRU
        // thrash permanently.
        EXPECT_LT(cache.hitRatio(), 0.1);
    } else {
        EXPECT_GT(cache.hitRatio(), 0.9);
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheAssocSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // anonymous namespace
} // namespace uhm
