/**
 * @file
 * Unit tests for the support substrate: bit streams, Huffman coding,
 * logging, stats, RNG, wrapping arithmetic and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/bitstream.hh"
#include "support/huffman.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/wrap.hh"

namespace uhm
{
namespace
{

// ---- logging ---------------------------------------------------------------

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    try {
        fatal("user error %s", "details");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "user error details");
    }
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(uhm_assert(1 == 2, "math broke: %d", 7), PanicError);
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    EXPECT_NO_THROW(uhm_assert(1 == 1, "fine"));
}

// ---- bitstream -------------------------------------------------------------

TEST(BitStream, SingleBits)
{
    BitWriter bw;
    bw.writeBit(true);
    bw.writeBit(false);
    bw.writeBit(true);
    EXPECT_EQ(bw.bitSize(), 3u);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_TRUE(br.readBit());
    EXPECT_FALSE(br.readBit());
    EXPECT_TRUE(br.readBit());
    EXPECT_TRUE(br.atEnd());
}

TEST(BitStream, ZeroWidthWritesNothing)
{
    BitWriter bw;
    bw.write(0, 0);
    EXPECT_EQ(bw.bitSize(), 0u);
}

TEST(BitStream, ValueTooWideForFieldPanics)
{
    BitWriter bw;
    EXPECT_THROW(bw.write(4, 2), PanicError);
}

TEST(BitStream, ReadPastEndPanics)
{
    BitWriter bw;
    bw.write(3, 2);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_THROW(br.read(3), PanicError);
}

TEST(BitStream, SeekAndPeek)
{
    BitWriter bw;
    bw.write(0b1011, 4);
    bw.write(0b0110, 4);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(br.peek(4), 0b1011u);
    EXPECT_EQ(br.pos(), 0u);
    br.seek(4);
    EXPECT_EQ(br.read(4), 0b0110u);
    br.seek(0);
    EXPECT_EQ(br.read(8), 0b10110110u);
}

TEST(BitStream, PeekPastEndZeroPads)
{
    BitWriter bw;
    bw.write(0b11, 2);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(br.peek(4), 0b1100u);
}

/**
 * The decode fast path reads the stream through peek()/consume(); it
 * must agree with read() at every boundary width, including widths that
 * straddle the 64-bit refill window.
 */
TEST(BitStream, PeekConsumeBoundaryWidths)
{
    Rng rng(2026);
    BitWriter bw;
    for (int i = 0; i < 3; ++i)
        bw.write(rng.next(), 64);
    const uint64_t total = bw.bitSize();
    for (unsigned width : {1u, 12u, 57u, 64u}) {
        BitReader ref(bw.bytes(), total);
        BitReader fast(bw.bytes(), total);
        while (ref.pos() + width <= total) {
            uint64_t expect = ref.read(width);
            EXPECT_EQ(fast.peek(width), expect) << "width " << width;
            fast.consume(width);
            EXPECT_EQ(fast.pos(), ref.pos());
        }
    }
}

TEST(BitStream, PeekBeyondEndZeroPadsWideWidths)
{
    BitWriter bw;
    bw.write(0b101, 3);
    BitReader br(bw.bytes(), bw.bitSize());
    // Fewer bits than asked for: the missing tail reads as zeros.
    EXPECT_EQ(br.peek(64), 0b101ull << 61);
    EXPECT_EQ(br.peek(12), 0b101u << 9);
    br.seek(3);
    EXPECT_EQ(br.peek(57), 0u);
}

TEST(BitStream, ConsumePastEndPanics)
{
    BitWriter bw;
    bw.write(0xf, 4);
    BitReader br(bw.bytes(), bw.bitSize());
    br.consume(3);
    EXPECT_THROW(br.consume(2), PanicError);
}

TEST(BitStream, ExtractStepCounting)
{
    BitWriter bw;
    bw.write(1, 5);
    bw.write(2, 7);
    BitReader br(bw.bytes(), bw.bitSize());
    br.read(5);
    br.read(7);
    EXPECT_EQ(br.extractSteps(), 2u);
    br.resetSteps();
    EXPECT_EQ(br.extractSteps(), 0u);
}

/** Round-trip random field sequences at every width. */
class BitStreamWidth : public ::testing::TestWithParam<unsigned>
{};

TEST_P(BitStreamWidth, RoundTripRandomValues)
{
    unsigned width = GetParam();
    Rng rng(width * 977 + 1);
    std::vector<uint64_t> values;
    BitWriter bw;
    for (int i = 0; i < 200; ++i) {
        uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1;
        uint64_t v = rng.next() & mask;
        values.push_back(v);
        bw.write(v, width);
    }
    EXPECT_EQ(bw.bitSize(), 200u * width);
    BitReader br(bw.bytes(), bw.bitSize());
    for (uint64_t v : values)
        EXPECT_EQ(br.read(width), v);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitStreamWidth,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u, 9u,
                                           13u, 16u, 17u, 23u, 31u, 32u,
                                           33u, 47u, 63u, 64u));

TEST(BitStream, MixedWidthRoundTrip)
{
    Rng rng(11);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    BitWriter bw;
    for (int i = 0; i < 500; ++i) {
        unsigned width = 1 + static_cast<unsigned>(rng.below(64));
        uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1;
        uint64_t v = rng.next() & mask;
        fields.emplace_back(v, width);
        bw.write(v, width);
    }
    BitReader br(bw.bytes(), bw.bitSize());
    for (auto [v, width] : fields)
        EXPECT_EQ(br.read(width), v);
}

// ---- zigzag ----------------------------------------------------------------

class ZigZag : public ::testing::TestWithParam<int64_t>
{};

TEST_P(ZigZag, RoundTrip)
{
    int64_t v = GetParam();
    EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
}

INSTANTIATE_TEST_SUITE_P(Values, ZigZag,
                         ::testing::Values(0ll, 1ll, -1ll, 2ll, -2ll,
                                           100ll, -100ll, INT64_MAX,
                                           INT64_MIN, 123456789ll,
                                           -987654321ll));

TEST(ZigZag, SmallMagnitudesGetSmallCodes)
{
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    EXPECT_EQ(zigzagEncode(2), 4u);
}

TEST(BitsFor, Boundaries)
{
    EXPECT_EQ(bitsFor(0), 1u);
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 2u);
    EXPECT_EQ(bitsFor(3), 2u);
    EXPECT_EQ(bitsFor(4), 3u);
    EXPECT_EQ(bitsFor(255), 8u);
    EXPECT_EQ(bitsFor(256), 9u);
    EXPECT_EQ(bitsFor(~0ull), 64u);
}

// ---- Huffman ---------------------------------------------------------------

std::vector<uint64_t>
randomFreqs(size_t n, uint64_t seed, bool skewed)
{
    Rng rng(seed);
    std::vector<uint64_t> freqs(n);
    for (size_t i = 0; i < n; ++i) {
        freqs[i] = skewed ? (i < n / 8 + 1 ? 1000 + rng.below(1000) :
                             rng.below(3)) :
            rng.below(100);
    }
    return freqs;
}

class HuffmanAlphabet : public ::testing::TestWithParam<size_t>
{};

TEST_P(HuffmanAlphabet, RoundTripAllSymbols)
{
    size_t n = GetParam();
    auto freqs = randomFreqs(n, n * 31 + 7, true);
    HuffmanCode hc = HuffmanCode::build(freqs);

    BitWriter bw;
    for (size_t s = 0; s < n; ++s)
        hc.encode(bw, s);
    BitReader br(bw.bytes(), bw.bitSize());
    for (size_t s = 0; s < n; ++s)
        EXPECT_EQ(hc.decode(br), s);
    EXPECT_TRUE(br.atEnd());
}

TEST_P(HuffmanAlphabet, WithinOneBitOfEntropy)
{
    size_t n = GetParam();
    if (n < 2)
        GTEST_SKIP() << "entropy bound trivial for one symbol";
    auto freqs = randomFreqs(n, n * 13 + 3, false);
    for (auto &f : freqs)
        f += 1; // all symbols occur
    HuffmanCode hc = HuffmanCode::build(freqs);
    double h = entropyBits(freqs);
    double l = hc.expectedLength(freqs);
    EXPECT_GE(l + 1e-9, h);
    EXPECT_LE(l, h + 1.0);
}

TEST_P(HuffmanAlphabet, KraftEqualityHolds)
{
    size_t n = GetParam();
    if (n < 2)
        GTEST_SKIP() << "a one-symbol code cannot saturate Kraft";
    auto freqs = randomFreqs(n, n * 17 + 5, true);
    HuffmanCode hc = HuffmanCode::build(freqs);
    long double kraft = 0.0;
    for (size_t s = 0; s < n; ++s)
        kraft += std::pow(2.0L, -static_cast<long double>(hc.lengthOf(s)));
    EXPECT_NEAR(static_cast<double>(kraft), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HuffmanAlphabet,
                         ::testing::Values(1u, 2u, 3u, 5u, 17u, 38u, 64u,
                                           129u, 300u));

TEST(Huffman, SingleSymbolGetsOneBit)
{
    HuffmanCode hc = HuffmanCode::build({42});
    EXPECT_EQ(hc.lengthOf(0), 1u);
    BitWriter bw;
    hc.encode(bw, 0);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(hc.decode(br), 0u);
}

TEST(Huffman, FrequentSymbolNotLongerThanRareOne)
{
    std::vector<uint64_t> freqs = {1000, 1, 1, 1, 1, 1, 1, 1};
    HuffmanCode hc = HuffmanCode::build(freqs);
    for (size_t s = 1; s < freqs.size(); ++s)
        EXPECT_LE(hc.lengthOf(0), hc.lengthOf(s));
}

TEST(Huffman, ZeroFrequencySymbolsStillCodeable)
{
    std::vector<uint64_t> freqs = {100, 0, 0, 50};
    HuffmanCode hc = HuffmanCode::build(freqs);
    BitWriter bw;
    hc.encode(bw, 1);
    hc.encode(bw, 2);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(hc.decode(br), 1u);
    EXPECT_EQ(hc.decode(br), 2u);
}

TEST(Huffman, DecodeStepsEqualCodeLength)
{
    auto freqs = randomFreqs(20, 99, true);
    HuffmanCode hc = HuffmanCode::build(freqs);
    for (size_t s = 0; s < freqs.size(); ++s) {
        BitWriter bw;
        hc.encode(bw, s);
        BitReader br(bw.bytes(), bw.bitSize());
        uint64_t steps = 0;
        hc.decode(br, &steps);
        EXPECT_EQ(steps, hc.lengthOf(s));
    }
}

class HuffmanLengthLimit : public ::testing::TestWithParam<unsigned>
{};

TEST_P(HuffmanLengthLimit, RespectsLimitAndStaysPrefixFree)
{
    unsigned max_len = GetParam();
    // Heavily skewed frequencies force long tails without a limit.
    std::vector<uint64_t> freqs;
    uint64_t f = 1;
    for (int i = 0; i < 20; ++i) {
        freqs.push_back(f);
        f = f * 2 + 1;
    }
    HuffmanCode hc = HuffmanCode::build(freqs, max_len);
    for (size_t s = 0; s < freqs.size(); ++s)
        EXPECT_LE(hc.lengthOf(s), max_len);
    // Round trip.
    BitWriter bw;
    for (size_t s = 0; s < freqs.size(); ++s)
        hc.encode(bw, s);
    BitReader br(bw.bytes(), bw.bitSize());
    for (size_t s = 0; s < freqs.size(); ++s)
        EXPECT_EQ(hc.decode(br), s);
}

INSTANTIATE_TEST_SUITE_P(Limits, HuffmanLengthLimit,
                         ::testing::Values(5u, 6u, 8u, 12u, 16u));

TEST(Huffman, LengthLimitedNoWorseThanNecessary)
{
    // With a generous limit, package-merge matches plain Huffman cost.
    auto freqs = randomFreqs(40, 5, false);
    for (auto &f : freqs)
        f += 1;
    HuffmanCode plain = HuffmanCode::build(freqs);
    HuffmanCode limited = HuffmanCode::build(freqs, 32);
    EXPECT_NEAR(plain.expectedLength(freqs),
                limited.expectedLength(freqs), 1e-9);
}

TEST(Huffman, QuantizedLengthsFromAllowedSet)
{
    auto freqs = randomFreqs(30, 77, true);
    std::vector<unsigned> allowed = {2, 4, 7, 10};
    HuffmanCode hc = HuffmanCode::buildQuantized(freqs, allowed);
    for (size_t s = 0; s < freqs.size(); ++s) {
        unsigned len = hc.lengthOf(s);
        EXPECT_TRUE(std::find(allowed.begin(), allowed.end(), len) !=
                    allowed.end())
            << "symbol " << s << " has disallowed length " << len;
    }
    // Round trip.
    BitWriter bw;
    for (size_t s = 0; s < freqs.size(); ++s)
        hc.encode(bw, s);
    BitReader br(bw.bytes(), bw.bitSize());
    for (size_t s = 0; s < freqs.size(); ++s)
        EXPECT_EQ(hc.decode(br), s);
}

TEST(Huffman, QuantizedCostBetweenOptimalAndWorstAllowed)
{
    auto freqs = randomFreqs(25, 123, true);
    std::vector<unsigned> allowed = {3, 5, 8, 12};
    HuffmanCode quantized = HuffmanCode::buildQuantized(freqs, allowed);
    HuffmanCode optimal = HuffmanCode::build(freqs, 12);
    EXPECT_GE(quantized.expectedLength(freqs) + 1e-9,
              optimal.expectedLength(freqs));
    EXPECT_LE(quantized.expectedLength(freqs), 12.0);
}

/**
 * Exhaustively verify package-merge optimality for tiny alphabets:
 * no prefix-feasible length assignment under the limit beats it.
 */
class PackageMergeOptimality
    : public ::testing::TestWithParam<std::tuple<size_t, unsigned>>
{};

TEST_P(PackageMergeOptimality, MatchesBruteForce)
{
    auto [n, max_len] = GetParam();
    auto freqs = randomFreqs(n, n * 7 + max_len, true);
    for (auto &f : freqs)
        f += 1;
    HuffmanCode hc = HuffmanCode::build(freqs, max_len);

    uint64_t pm_cost = 0;
    for (size_t s = 0; s < n; ++s)
        pm_cost += freqs[s] * hc.lengthOf(s);

    // Brute force over all length vectors in [1, max_len]^n that
    // satisfy Kraft.
    std::vector<unsigned> lens(n, 1);
    uint64_t best = UINT64_MAX;
    for (;;) {
        double kraft = 0;
        uint64_t cost = 0;
        for (size_t s = 0; s < n; ++s) {
            kraft += std::pow(2.0, -static_cast<double>(lens[s]));
            cost += freqs[s] * lens[s];
        }
        if (kraft <= 1.0 + 1e-12)
            best = std::min(best, cost);
        // Odometer increment.
        size_t i = 0;
        while (i < n && ++lens[i] > max_len) {
            lens[i] = 1;
            ++i;
        }
        if (i == n)
            break;
    }
    EXPECT_EQ(pm_cost, best);
}

INSTANTIATE_TEST_SUITE_P(
    TinyAlphabets, PackageMergeOptimality,
    ::testing::Values(std::make_tuple(size_t{2}, 2u),
                      std::make_tuple(size_t{3}, 2u),
                      std::make_tuple(size_t{4}, 3u),
                      std::make_tuple(size_t{5}, 3u),
                      std::make_tuple(size_t{5}, 4u),
                      std::make_tuple(size_t{6}, 3u)));

TEST(Huffman, DecodeTreeNodesGrowWithAlphabet)
{
    HuffmanCode small = HuffmanCode::build(randomFreqs(4, 1, false));
    HuffmanCode large = HuffmanCode::build(randomFreqs(200, 1, false));
    EXPECT_LT(small.decodeTreeNodes(), large.decodeTreeNodes());
}

TEST(Entropy, UniformAndDegenerate)
{
    EXPECT_NEAR(entropyBits({1, 1, 1, 1}), 2.0, 1e-12);
    EXPECT_NEAR(entropyBits({5, 0, 0, 0}), 0.0, 1e-12);
    EXPECT_NEAR(entropyBits({}), 0.0, 1e-12);
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, AddGetMergeClear)
{
    StatSet a;
    a.add("x");
    a.add("x", 4);
    a.add("y", 2);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 2u);
    EXPECT_EQ(a.get("absent"), 0u);

    StatSet b;
    b.add("x", 10);
    b.add("z", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("z"), 1u);

    a.clear();
    EXPECT_EQ(a.get("x"), 0u);
}

TEST(Stats, SampleStat)
{
    SampleStat s;
    s.record(3.0);
    s.record(1.0);
    s.record(8.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(5), b(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(5), b(6);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(10);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---- wrap ------------------------------------------------------------------

TEST(Wrap, AdditionWraps)
{
    EXPECT_EQ(wrapAdd(INT64_MAX, 1), INT64_MIN);
    EXPECT_EQ(wrapSub(INT64_MIN, 1), INT64_MAX);
    EXPECT_EQ(wrapNeg(INT64_MIN), INT64_MIN);
}

TEST(Wrap, MultiplicationWraps)
{
    EXPECT_EQ(wrapMul(1ll << 32, 1ll << 32), 0);
    EXPECT_EQ(wrapMul(3, 4), 12);
}

TEST(Wrap, DivisionEdgeCases)
{
    EXPECT_EQ(wrapDiv(INT64_MIN, -1), INT64_MIN);
    EXPECT_EQ(wrapMod(INT64_MIN, -1), 0);
    EXPECT_EQ(wrapDiv(7, -2), -3);
    EXPECT_EQ(wrapMod(7, -2), 1);
}

TEST(Wrap, Shifts)
{
    EXPECT_EQ(wrapShl(1, 63), INT64_MIN);
    EXPECT_EQ(wrapShr(-8, 1), -4);
    EXPECT_EQ(wrapShl(1, 64), 1); // shift masked to 0
}

// ---- table -----------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(uint64_t{42}), "42");
    EXPECT_EQ(TextTable::num(int64_t{-7}), "-7");
}

// ---- json ------------------------------------------------------------------

TEST(Json, ObjectsArraysAndScalars)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("name").value("uhm");
    jw.key("count").value(uint64_t{42});
    jw.key("ratio").value(0.5);
    jw.key("ok").value(true);
    jw.key("list").beginArray().value(1).value(2).value(3).endArray();
    jw.key("nested").beginObject().key("x").value(-7).endObject();
    jw.endObject();
    EXPECT_EQ(jw.str(),
              "{\"name\":\"uhm\",\"count\":42,\"ratio\":0.5,"
              "\"ok\":true,\"list\":[1,2,3],\"nested\":{\"x\":-7}}");
}

TEST(Json, StringEscaping)
{
    JsonWriter jw;
    jw.beginArray();
    jw.value("a\"b\\c\nd\te");
    jw.endArray();
    EXPECT_EQ(jw.str(), "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(Json, EmptyContainers)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("arr").beginArray().endArray();
    jw.key("obj").beginObject().endObject();
    jw.endObject();
    EXPECT_EQ(jw.str(), "{\"arr\":[],\"obj\":{}}");
}

} // anonymous namespace
} // namespace uhm
