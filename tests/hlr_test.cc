/**
 * @file
 * Tests for the Contour HLR front end: lexer, parser, compiler
 * (semantic analysis + code generation) and the direct AST interpreter.
 */

#include <gtest/gtest.h>

#include "hlr/compiler.hh"
#include "hlr/interp.hh"
#include "hlr/lexer.hh"
#include "hlr/parser.hh"
#include "support/logging.hh"
#include "workload/samples.hh"

namespace uhm::hlr
{
namespace
{

// ---- lexer -----------------------------------------------------------------

std::vector<Token>
lex(const std::string &src)
{
    return Lexer(src).lexAll();
}

TEST(Lexer, BasicTokens)
{
    auto toks = lex("x := 42 + y;");
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "x");
    EXPECT_EQ(toks[1].kind, Tok::Assign);
    EXPECT_EQ(toks[2].kind, Tok::Number);
    EXPECT_EQ(toks[2].value, 42);
    EXPECT_EQ(toks[3].kind, Tok::Plus);
    EXPECT_EQ(toks[4].kind, Tok::Ident);
    EXPECT_EQ(toks[5].kind, Tok::Semi);
    EXPECT_EQ(toks[6].kind, Tok::EndOfFile);
}

TEST(Lexer, KeywordsAreNotIdentifiers)
{
    auto toks = lex("while whilex");
    EXPECT_EQ(toks[0].kind, Tok::KwWhile);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "whilex");
}

TEST(Lexer, TwoCharOperators)
{
    auto toks = lex("<= >= <> < > =");
    EXPECT_EQ(toks[0].kind, Tok::Le);
    EXPECT_EQ(toks[1].kind, Tok::Ge);
    EXPECT_EQ(toks[2].kind, Tok::Ne);
    EXPECT_EQ(toks[3].kind, Tok::Lt);
    EXPECT_EQ(toks[4].kind, Tok::Gt);
    EXPECT_EQ(toks[5].kind, Tok::Eq);
}

TEST(Lexer, CommentsAreSkipped)
{
    auto toks = lex("a # the rest is noise ; := while\nb");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn)
{
    auto toks = lex("a\n  b");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[0].loc.col, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, StrayCharacterIsFatal)
{
    EXPECT_THROW(lex("a ? b"), FatalError);
}

TEST(Lexer, LoneColonIsFatal)
{
    EXPECT_THROW(lex("a : b"), FatalError);
}

TEST(Lexer, HugeLiteralIsFatal)
{
    EXPECT_THROW(lex("99999999999999999999999999"), FatalError);
}

// ---- parser ----------------------------------------------------------------

std::string
parseExprToString(const std::string &src)
{
    Parser parser(lex(src));
    return toString(*parser.parseExprOnly());
}

TEST(Parser, MulBindsTighterThanAdd)
{
    EXPECT_EQ(parseExprToString("1 + 2 * 3"), "(1 + (2 * 3))");
    EXPECT_EQ(parseExprToString("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(Parser, LeftAssociativity)
{
    EXPECT_EQ(parseExprToString("1 - 2 - 3"), "((1 - 2) - 3)");
    EXPECT_EQ(parseExprToString("8 / 4 / 2"), "((8 / 4) / 2)");
}

TEST(Parser, RelationalBelowLogical)
{
    EXPECT_EQ(parseExprToString("a < b and c > d"),
              "((a < b) and (c > d))");
    EXPECT_EQ(parseExprToString("a or b and c"), "(a or (b and c))");
}

TEST(Parser, UnaryOperators)
{
    EXPECT_EQ(parseExprToString("-x + 1"), "(-x + 1)");
    EXPECT_EQ(parseExprToString("not a and b"), "(not a and b)");
    EXPECT_EQ(parseExprToString("- - x"), "--x");
}

TEST(Parser, IndexAndCallPrimaries)
{
    EXPECT_EQ(parseExprToString("a[i + 1]"), "a[(i + 1)]");
    EXPECT_EQ(parseExprToString("f(1, g(2), h())"), "f(1, g(2), h())");
}

TEST(Parser, FullProgramStructure)
{
    AstProgram prog = parse(R"(
program demo;
var a, b[10];
proc p(x, y);
begin
  a := x + y;
end;
begin
  call p(1, 2);
  if a > 0 then write a; else write 0; fi;
  while a > 0 do a := a - 1; od;
end.
)");
    EXPECT_EQ(prog.name, "demo");
    ASSERT_EQ(prog.main.vars.size(), 2u);
    EXPECT_EQ(prog.main.vars[0].arraySize, 0u);
    EXPECT_EQ(prog.main.vars[1].arraySize, 10u);
    ASSERT_EQ(prog.main.procs.size(), 1u);
    EXPECT_EQ(prog.main.procs[0].params.size(), 2u);
    EXPECT_FALSE(prog.main.procs[0].isFunc);
    ASSERT_EQ(prog.main.body.size(), 3u);
    EXPECT_EQ(prog.main.body[0]->kind, Stmt::Kind::Call);
    EXPECT_EQ(prog.main.body[1]->kind, Stmt::Kind::If);
    EXPECT_FALSE(prog.main.body[1]->elseBody.empty());
    EXPECT_EQ(prog.main.body[2]->kind, Stmt::Kind::While);
}

TEST(Parser, MissingSemicolonIsFatal)
{
    EXPECT_THROW(parse("program p; begin a := 1 end."), FatalError);
}

TEST(Parser, MissingDotIsFatal)
{
    EXPECT_THROW(parse("program p; begin end"), FatalError);
}

TEST(Parser, ZeroArraySizeIsFatal)
{
    EXPECT_THROW(parse("program p; var a[0]; begin end."), FatalError);
}

TEST(Parser, GarbageStatementIsFatal)
{
    EXPECT_THROW(parse("program p; begin od; end."), FatalError);
}

TEST(Parser, AllSamplesParse)
{
    for (const auto &sample : workload::samplePrograms())
        EXPECT_NO_THROW(parse(sample.source)) << sample.name;
}

// ---- compiler --------------------------------------------------------------

TEST(Compiler, AllSamplesCompileAndValidate)
{
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = compileSource(sample.source);
        EXPECT_GT(prog.size(), 0u) << sample.name;
        EXPECT_NO_THROW(prog.validate()) << sample.name;
    }
}

TEST(Compiler, GlobalsGetDepthZeroSlots)
{
    DirProgram prog = compileSource(
        "program p; var a, b[3], c; begin c := 5; end.");
    EXPECT_EQ(prog.numGlobals, 5u); // a, b[3], c
    // c := 5 -> PUSHC 5; STOREL 0 4.
    bool found = false;
    for (const auto &ins : prog.instrs) {
        if (ins.op == Op::STOREL) {
            EXPECT_EQ(ins.operands[0], 0);
            EXPECT_EQ(ins.operands[1], 4);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Compiler, ContourTableForNestedProcs)
{
    DirProgram prog = compileSource(
        workload::sampleByName("nest").source);
    ASSERT_EQ(prog.contours.size(), 3u); // main, outer, inner
    const Contour &outer = prog.contours[1];
    const Contour &inner = prog.contours[2];
    EXPECT_EQ(outer.depth, 2u);
    EXPECT_EQ(inner.depth, 3u);
    EXPECT_EQ(outer.nparams, 1u);
    EXPECT_EQ(outer.nlocals, 2u); // k, u
    EXPECT_TRUE(inner.isFunc);
    ASSERT_EQ(inner.slotsAtDepth.size(), 4u);
    EXPECT_EQ(inner.slotsAtDepth[0], prog.numGlobals);
    EXPECT_EQ(inner.slotsAtDepth[2], outer.nlocals);
}

TEST(Compiler, FunctionsGetImplicitZeroReturn)
{
    DirProgram prog = compileSource(
        "program p; func f(); begin end; begin write f(); end.");
    // The function body should end PUSHC 0; RET.
    const Contour &f = prog.contours[1];
    EXPECT_EQ(prog.instrs[f.entry].op, Op::ENTER);
    bool has_push_zero_ret = false;
    for (size_t i = f.entry; i + 1 < prog.size(); ++i) {
        if (prog.instrs[i].op == Op::PUSHC &&
            prog.instrs[i].operands[0] == 0 &&
            prog.instrs[i + 1].op == Op::RET) {
            has_push_zero_ret = true;
        }
    }
    EXPECT_TRUE(has_push_zero_ret);
}

TEST(Compiler, UndeclaredNameIsFatal)
{
    EXPECT_THROW(compileSource("program p; begin x := 1; end."),
                 FatalError);
}

TEST(Compiler, RedeclarationIsFatal)
{
    EXPECT_THROW(compileSource("program p; var a, a; begin end."),
                 FatalError);
}

TEST(Compiler, ArityMismatchIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; proc q(x); begin end; begin call q(1, 2); end."),
        FatalError);
}

TEST(Compiler, IndexingScalarIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; var a; begin a[0] := 1; end."), FatalError);
}

TEST(Compiler, ArrayWithoutIndexIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; var a[4]; begin a := 1; end."), FatalError);
}

TEST(Compiler, CallingVariableIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; var a; begin call a(); end."), FatalError);
}

TEST(Compiler, UsingProcAsValueIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; proc q(); begin end; begin write q(); end."),
        FatalError);
}

TEST(Compiler, ValueReturnFromProcIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; proc q(); begin return 3; end; begin end."),
        FatalError);
}

TEST(Compiler, ValueReturnFromMainIsFatal)
{
    EXPECT_THROW(compileSource("program p; begin return 3; end."),
                 FatalError);
}

TEST(Compiler, MultipleErrorsAreAllReported)
{
    try {
        compileSource("program p; begin x := 1; y := 2; end.");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("'x'"), std::string::npos);
        EXPECT_NE(msg.find("'y'"), std::string::npos);
    }
}

TEST(Compiler, SiblingProceduresCanCallEachOther)
{
    EXPECT_NO_THROW(compileSource(R"(
program p;
var n;
proc even(k);
begin
  if k = 0 then n := 1; else call odd(k - 1); fi;
end;
proc odd(k);
begin
  if k = 0 then n := 0; else call even(k - 1); fi;
end;
begin
  call even(10);
  write n;
end.
)"));
}

TEST(Compiler, ConstantsFoldToPushc)
{
    DirProgram prog = compileSource(
        "program p; const k = 7; var a; begin a := k + k; write a; "
        "end.");
    // No variable slot for k.
    EXPECT_EQ(prog.numGlobals, 1u);
    size_t pushc7 = 0;
    for (const auto &ins : prog.instrs) {
        pushc7 += ins.op == Op::PUSHC && ins.operands[0] == 7;
    }
    EXPECT_EQ(pushc7, 2u);
}

TEST(Compiler, NegativeConstants)
{
    DirProgram prog = compileSource(
        "program p; const k = -5; begin write k; end.");
    bool found = false;
    for (const auto &ins : prog.instrs)
        found |= ins.op == Op::PUSHC && ins.operands[0] == -5;
    EXPECT_TRUE(found);
}

TEST(Compiler, AssigningConstantIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; const k = 1; begin k := 2; end."), FatalError);
}

TEST(Compiler, ReadingIntoConstantIsFatal)
{
    EXPECT_THROW(compileSource(
        "program p; const k = 1; begin read k; end."), FatalError);
}

TEST(Compiler, ForLoopCompilesToCountedWhile)
{
    DirProgram prog = compileSource(
        "program p; var i, s; begin s := 0; "
        "for i := 1 to 4 do s := s + i; od; write s; end.");
    // The loop uses LE for its bound test.
    bool has_le = false;
    for (const auto &ins : prog.instrs)
        has_le |= ins.op == Op::LE;
    EXPECT_TRUE(has_le);
}

TEST(Compiler, ForLoopVariableMustBeScalar)
{
    EXPECT_THROW(compileSource(
        "program p; var a[3]; begin for a := 1 to 2 do od; end."),
        FatalError);
    EXPECT_THROW(compileSource(
        "program p; const k = 1; begin for k := 1 to 2 do od; end."),
        FatalError);
}

TEST(Compiler, RepeatUntilRunsBodyAtLeastOnce)
{
    // Semantics verified through the interpreter below; here just check
    // the shape: a backward JZ.
    DirProgram prog = compileSource(
        "program p; var i; begin i := 0; "
        "repeat i := i + 1; until i >= 3; write i; end.");
    bool backward_jz = false;
    for (size_t k = 0; k < prog.size(); ++k) {
        const auto &ins = prog.instrs[k];
        backward_jz |= ins.op == Op::JZ &&
            static_cast<size_t>(ins.operands[0]) < k;
    }
    EXPECT_TRUE(backward_jz);
}

// ---- direct HLR interpretation ---------------------------------------------

TEST(HlrInterp, SamplesProduceExpectedOutput)
{
    for (const auto &sample : workload::samplePrograms()) {
        if (sample.expected.empty())
            continue;
        AstProgram ast = parse(sample.source);
        HlrRunResult result = interpretHlr(ast, sample.input);
        EXPECT_EQ(result.output, sample.expected) << sample.name;
    }
}

TEST(HlrInterp, CountsAssociativeSearchWork)
{
    AstProgram ast = parse(workload::sampleByName("sieve").source);
    HlrRunResult result = interpretHlr(ast);
    // Every name reference costs table-search comparisons; a sieve over
    // 1000 elements performs tens of thousands.
    EXPECT_GT(result.stats.get("hlr_name_search_steps"), 10'000u);
    EXPECT_GT(result.stats.get("hlr_stmts"), 1'000u);
}

TEST(HlrInterp, StatementBudgetGuardsRunaways)
{
    AstProgram ast = parse(
        "program p; var a; begin a := 1; while 1 do a := a + 1; od; end.");
    EXPECT_THROW(interpretHlr(ast, {}, 1000), FatalError);
}

TEST(HlrInterp, DivisionByZeroIsFatal)
{
    AstProgram ast = parse(
        "program p; var a; begin a := 0; write 1 / a; end.");
    EXPECT_THROW(interpretHlr(ast), FatalError);
}

TEST(HlrInterp, ArrayBoundsAreChecked)
{
    AstProgram ast = parse(
        "program p; var a[3]; begin a[5] := 1; end.");
    EXPECT_THROW(interpretHlr(ast), FatalError);
}

TEST(HlrInterp, MissingInputReadsZero)
{
    AstProgram ast = parse(
        "program p; var v; begin read v; write v + 1; end.");
    HlrRunResult result = interpretHlr(ast, {});
    EXPECT_EQ(result.output, std::vector<int64_t>{1});
}

TEST(HlrInterp, ForLoopSemantics)
{
    AstProgram ast = parse(
        "program p; var i, s; begin s := 0; "
        "for i := 2 to 5 do s := s * 10 + i; od; write s; write i; "
        "end.");
    HlrRunResult r = interpretHlr(ast);
    EXPECT_EQ(r.output, (std::vector<int64_t>{2345, 6}));
}

TEST(HlrInterp, ForLoopWithEmptyRange)
{
    AstProgram ast = parse(
        "program p; var i, s; begin s := 9; "
        "for i := 5 to 2 do s := 0; od; write s; end.");
    EXPECT_EQ(interpretHlr(ast).output, std::vector<int64_t>{9});
}

TEST(HlrInterp, RepeatRunsAtLeastOnce)
{
    AstProgram ast = parse(
        "program p; var i; begin i := 100; "
        "repeat i := i + 1; until 1; write i; end.");
    EXPECT_EQ(interpretHlr(ast).output, std::vector<int64_t>{101});
}

TEST(HlrInterp, ConstantsAreImmutable)
{
    AstProgram ast = parse(
        "program p; const k = 3; begin k := 4; end.");
    EXPECT_THROW(interpretHlr(ast), FatalError);
}

TEST(HlrInterp, ConstantsShadowableInProcs)
{
    AstProgram ast = parse(
        "program p; const k = 3; "
        "func f(); const k = 10; begin return k; end; "
        "begin write k + f(); end.");
    EXPECT_EQ(interpretHlr(ast).output, std::vector<int64_t>{13});
}

TEST(HlrInterp, RecursionSeesCorrectLexicalScope)
{
    // The inner function must see the *current* activation of outer.
    AstProgram ast = parse(R"(
program scopes;
var out;
proc outer(depth);
var mine;
func probe();
begin
  return mine;
end;
begin
  mine := depth * 10;
  if depth > 0 then call outer(depth - 1); fi;
  out := out + probe();
end;
begin
  out := 0;
  call outer(3);
  write out;
end.
)");
    // probe() returns 0,10,20,30 across the unwinding -> 60.
    HlrRunResult result = interpretHlr(ast);
    EXPECT_EQ(result.output, std::vector<int64_t>{60});
}

} // anonymous namespace
} // namespace uhm::hlr
