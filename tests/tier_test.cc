/**
 * @file
 * The adaptive tier (src/tier/): trace-cache unit behavior, the
 * DTB/trace-cache anchor coupling (invalidation is correct by
 * construction), trace formation and fusion through the machine, the
 * steady-state win over the plain DTB organization, and the Dtb2
 * hot-promotion path the tier's profiler generalizes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dtb.hh"
#include "core/translator.hh"
#include "dir/isa.hh"
#include "hlr/compiler.hh"
#include "obs/trace.hh"
#include "tier/engine.hh"
#include "tier/trace_cache.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"

namespace uhm
{
namespace
{

using tier::Trace;
using tier::TraceCache;
using tier::TraceCacheConfig;
using tier::TierConfig;
using tier::TierEngine;

MachineConfig
configFor(MachineKind kind)
{
    MachineConfig cfg;
    cfg.kind = kind;
    return cfg;
}

/** A loop hot enough that the default threshold promotes it. */
const char *kHotLoop =
    "program t; var i, s; begin i := 500; s := 0; "
    "while i > 0 do s := s + i; i := i - 1; od; write s; end.";

/** A trace occupying ceil(shorts / unit) allocation units. */
Trace
traceOf(uint64_t head, uint64_t shorts)
{
    Trace t;
    t.head = head;
    t.loops = true;
    t.dirCount = 1;
    t.shortCount = shorts;
    return t;
}

/** A tiny fully-associative cache: @p units entries of 4 shorts. */
TraceCacheConfig
tinyCache(uint64_t units)
{
    TraceCacheConfig cfg;
    cfg.unitShortInstrs = 4; // 8-byte unit
    cfg.capacityBytes = units * 8;
    cfg.assoc = 0;
    return cfg;
}

// ---- TraceCache unit behavior ----------------------------------------------

TEST(TraceCache, InsertLookupRoundTrip)
{
    TraceCache cache(tinyCache(4));
    EXPECT_EQ(cache.lookup(100), nullptr); // miss
    auto out = cache.insert(traceOf(100, 4));
    EXPECT_TRUE(out.retained);
    EXPECT_EQ(out.unitsNeeded, 1u);
    const Trace *t = cache.lookup(100);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->head, 100u);
    EXPECT_EQ(cache.unitsUsed(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5); // one miss, one hit
}

TEST(TraceCache, SameHeadReinsertReplaces)
{
    TraceCache cache(tinyCache(4));
    ASSERT_TRUE(cache.insert(traceOf(100, 4)).retained);
    auto out = cache.insert(traceOf(100, 8)); // grows to 2 units
    EXPECT_TRUE(out.retained);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimHead, 100u);
    EXPECT_EQ(cache.unitsUsed(), 2u);
    ASSERT_NE(cache.find(100), nullptr);
    EXPECT_EQ(cache.find(100)->shortCount, 8u);
}

TEST(TraceCache, LruEvictsTheLeastRecentlyTouched)
{
    TraceCache cache(tinyCache(2)); // 2 entries, one set
    ASSERT_TRUE(cache.insert(traceOf(1, 4)).retained);
    ASSERT_TRUE(cache.insert(traceOf(2, 4)).retained);
    ASSERT_NE(cache.lookup(1), nullptr); // 1 is now most recent
    auto out = cache.insert(traceOf(3, 4));
    EXPECT_TRUE(out.retained);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimHead, 2u);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
}

TEST(TraceCache, OversizedInsertIsRejectedAndVictimSurvives)
{
    TraceCache cache(tinyCache(2));
    ASSERT_TRUE(cache.insert(traceOf(1, 8)).retained); // both units
    // 16 shorts need 4 units; even evicting a victim frees only 2.
    auto out = cache.insert(traceOf(2, 16));
    EXPECT_FALSE(out.retained);
    EXPECT_FALSE(out.evicted);
    EXPECT_NE(cache.find(1), nullptr) << "victim must survive a reject";
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_EQ(cache.unitsUsed(), 2u);
}

TEST(TraceCache, InvalidateReleasesUnits)
{
    TraceCache cache(tinyCache(4));
    ASSERT_TRUE(cache.insert(traceOf(7, 8)).retained);
    EXPECT_EQ(cache.unitsUsed(), 2u);
    EXPECT_FALSE(cache.invalidate(9)); // not resident
    EXPECT_TRUE(cache.invalidate(7));
    EXPECT_EQ(cache.find(7), nullptr);
    EXPECT_EQ(cache.unitsUsed(), 0u);
    EXPECT_FALSE(cache.invalidate(7)); // already gone
}

// ---- the DTB anchor flag ---------------------------------------------------

TEST(DtbAnchors, MarkRequiresResidency)
{
    Dtb dtb(DtbConfig{});
    EXPECT_FALSE(dtb.markTraceAnchor(64));
    dtb.insert(64, {ShortInstr{}, ShortInstr{}});
    EXPECT_TRUE(dtb.markTraceAnchor(64));
    Dtb::LookupResult lr = dtb.lookup(64);
    ASSERT_TRUE(lr.hit);
    ASSERT_NE(lr.meta, nullptr);
    EXPECT_TRUE(lr.meta->anchorsTrace);
    dtb.clearTraceAnchor(64);
    EXPECT_FALSE(dtb.lookup(64).meta->anchorsTrace);
}

// ---- invalidation is correct by construction -------------------------------

/**
 * Record and install a one-instruction guarded trace at a conditional
 * branch, then hammer the tiny DTB with other translations until the
 * anchoring entry is evicted: installTranslation must report the
 * coupled invalidation, and the trace must be gone from the cache.
 */
TEST(TierEngine, EvictingTheAnchorInvalidatesTheTrace)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    // A branch instruction: Stack successor, so the recorded step
    // compiles to a guard rather than a static-successor assertion.
    size_t branch_idx = prog.instrs.size();
    for (size_t i = 0; i < prog.instrs.size(); ++i) {
        if (prog.instrs[i].op == Op::JZ ||
            prog.instrs[i].op == Op::JNZ) {
            branch_idx = i;
            break;
        }
    }
    ASSERT_LT(branch_idx, prog.instrs.size());
    uint64_t head = image->bitAddrOf(branch_idx);

    DtbConfig small;
    small.capacityBytes = 96; // a handful of entries
    small.assoc = 0;
    Dtb dtb(small);
    TierEngine engine(*image, dtb, TierConfig{}, TraceCacheConfig{});
    DynamicTranslator translator(*image);

    engine.installTranslation(head, translator.translate(head).code);
    engine.beginRecording(head);
    TierEngine::RecordOutcome rec = engine.recordStep(head); // loops
    ASSERT_EQ(rec.status, TierEngine::RecordStatus::Closed);
    ASSERT_TRUE(rec.compile.installed);
    ASSERT_NE(engine.cache().find(head), nullptr);
    ASSERT_TRUE(dtb.lookup(head).meta->anchorsTrace);

    bool saw_coupled_invalidation = false;
    for (size_t i = 0; i < image->numInstrs(); ++i) {
        uint64_t addr = image->bitAddrOf(i);
        if (addr == head)
            continue;
        TierEngine::InstallResult r = engine.installTranslation(
            addr, translator.translate(addr).code);
        if (r.dtb.evicted && r.dtb.victimTag == head) {
            EXPECT_TRUE(r.invalidatedTrace);
            saw_coupled_invalidation = true;
            break;
        }
    }
    ASSERT_TRUE(saw_coupled_invalidation)
        << "tiny DTB never evicted the anchor";
    EXPECT_EQ(engine.cache().find(head), nullptr)
        << "stale trace left executable after its anchor was evicted";
}

// ---- trace formation through the machine -----------------------------------

TEST(Tiered, HotLoopFormsTracesAndMatchesDtbOutput)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    Machine dtb(*image, configFor(MachineKind::Dtb));
    Machine tiered(*image, configFor(MachineKind::Tiered));
    RunResult r2 = dtb.run();
    RunResult r4 = tiered.run();

    EXPECT_EQ(r4.output, r2.output);
    EXPECT_EQ(r4.dirInstrs, r2.dirInstrs);
    EXPECT_GT(r4.counters.at("tier.traces_installed"), 0u);
    EXPECT_GT(r4.traceCoverage, 0.5);
    // The acceptance bar: at equal DTB configuration the steady-state
    // dispatch work (and with it the total) must be strictly lower.
    EXPECT_LT(r4.breakdown.dispatch, r2.breakdown.dispatch);
    EXPECT_LT(r4.cycles, r2.cycles);
}

TEST(Tiered, TraceBodiesFuseLikeRaiseSemanticLevel)
{
    // The loop body contains i := i - 1, a PUSHL/PUSHC/SUB/STOREL
    // quartet the tier-2 translator must fuse exactly as
    // raiseSemanticLevel would.
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    Machine tiered(*image, configFor(MachineKind::Tiered));
    RunResult r = tiered.run();
    EXPECT_GT(r.counters.at("tier.fused_groups"), 0u);
    EXPECT_GT(r.counters.at("tier.compiled_short_instrs"), 0u);
    EXPECT_GT(r.breakdown.translate2, 0u);
}

TEST(Tiered, SurvivesDtbPressureWithCorrectOutput)
{
    const auto &sample = workload::sampleByName("qsort");
    DirProgram prog = hlr::compileSource(sample.source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    MachineConfig ref_cfg = configFor(MachineKind::Dtb);
    MachineConfig cfg = configFor(MachineKind::Tiered);
    ref_cfg.dtb.capacityBytes = cfg.dtb.capacityBytes = 256;
    Machine dtb(*image, ref_cfg);
    Machine tiered(*image, cfg);
    RunResult r2 = dtb.run(sample.input);
    RunResult r4 = tiered.run(sample.input);
    EXPECT_EQ(r4.output, r2.output);
    EXPECT_EQ(r4.dirInstrs, r2.dirInstrs);
}

TEST(Tiered, ThresholdGatesTraceFormation)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    MachineConfig never = configFor(MachineKind::Tiered);
    never.tier.hotThreshold = 1u << 30; // colder than any loop here
    Machine cold(*image, never);
    RunResult rc = cold.run();
    EXPECT_EQ(rc.counters.at("tier.traces_recorded"), 0u);
    EXPECT_DOUBLE_EQ(rc.traceCoverage, 0.0);

    Machine hot(*image, configFor(MachineKind::Tiered));
    RunResult rh = hot.run();
    EXPECT_GT(rh.counters.at("tier.traces_recorded"), 0u);
    EXPECT_EQ(rh.output, rc.output);
}

// ---- multilevel-DTB hot promotion (Dtb2) -----------------------------------

TEST(Dtb2Promotion, HotLoopSteadyStateRunsFromTheFirstLevel)
{
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    Machine machine(*image, configFor(MachineKind::Dtb2));
    RunResult r = machine.run();

    // The working set is installed into the first level...
    EXPECT_GT(r.counters.at("dtbl1.inserts"), 0u);
    // ...and the hot loop's steady state then hits there.
    EXPECT_GT(r.stats.get("dtbl1_hits"),
              r.stats.get("dtbl1_misses"));
}

TEST(Dtb2Promotion, ReuseAfterDemotionPromotesFromTheSecondLevel)
{
    // A first level too small for the loop body keeps demoting entries;
    // each reuse of a demoted entry must hit the second level and be
    // promoted back (the Promote event), never re-translated.
    DirProgram prog = hlr::compileSource(kHotLoop);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg = configFor(MachineKind::Dtb2);
    cfg.dtbL1.capacityBytes = 64;
    cfg.profileEvents = true;
    Machine machine(*image, cfg);
    RunResult r = machine.run();

    EXPECT_GT(r.counters.at("dtbl1.evictions"), 0u);
    uint64_t promotes = 0;
    for (const obs::Event &e : r.events)
        promotes += e.kind == obs::EventKind::Promote;
    EXPECT_GT(promotes, 0u);
    // Promotion serves reuse from the second level: its hits dwarf its
    // misses (the only misses are first touches).
    EXPECT_GT(r.stats.get("dtb_hits"), r.stats.get("dtb_misses"));
}

TEST(Dtb2Promotion, DemotionOnEvictionKeepsRunsCorrect)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("qsort").source);
    const auto &input = workload::sampleByName("qsort").input;
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    MachineConfig cfg = configFor(MachineKind::Dtb2);
    cfg.dtbL1.capacityBytes = 64; // force first-level evictions
    Machine two(*image, cfg);
    Machine ref(*image, configFor(MachineKind::Dtb));
    RunResult r2 = two.run(input);
    RunResult rr = ref.run(input);

    EXPECT_GT(r2.counters.at("dtbl1.evictions"), 0u)
        << "tiny first level must demote entries";
    // Demotion is local to the first level: the run's semantics and
    // instruction stream are untouched.
    EXPECT_EQ(r2.output, rr.output);
    EXPECT_EQ(r2.dirInstrs, rr.dirInstrs);
    // Promotion keeps refilling after demotion.
    EXPECT_GT(r2.counters.at("dtbl1.inserts"),
              r2.counters.at("dtbl1.evictions"));
}

} // anonymous namespace
} // namespace uhm
