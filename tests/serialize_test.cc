/**
 * @file
 * Tests for DIR program serialization: round trips, corruption and
 * truncation detection, file I/O, and image-reproducibility.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "dir/encoding.hh"
#include "dir/serialize.hh"
#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

class SerializeRoundTrip : public ::testing::TestWithParam<const char *>
{};

TEST_P(SerializeRoundTrip, ByteRoundTripIsExact)
{
    DirProgram original;
    if (std::string(GetParam()) == "synthetic") {
        workload::SyntheticConfig cfg;
        cfg.seed = 55;
        original = workload::generateSynthetic(cfg);
    } else {
        original = hlr::compileSource(
            workload::sampleByName(GetParam()).source);
    }

    std::vector<uint8_t> bytes = serializeDirProgram(original);
    DirProgram loaded = deserializeDirProgram(bytes);

    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.instrs[i], original.instrs[i]);
        EXPECT_EQ(loaded.contourOf[i], original.contourOf[i]);
    }
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.entry, original.entry);
    EXPECT_EQ(loaded.numGlobals, original.numGlobals);
    ASSERT_EQ(loaded.contours.size(), original.contours.size());
    for (size_t c = 0; c < original.contours.size(); ++c) {
        EXPECT_EQ(loaded.contours[c].name, original.contours[c].name);
        EXPECT_EQ(loaded.contours[c].slotsAtDepth,
                  original.contours[c].slotsAtDepth);
        EXPECT_EQ(loaded.contours[c].isFunc,
                  original.contours[c].isFunc);
    }
}

TEST_P(SerializeRoundTrip, EncodedImagesAreBitIdentical)
{
    // Encoders are deterministic, so program + scheme must reproduce
    // every image bit-for-bit after a round trip.
    if (std::string(GetParam()) == "synthetic")
        GTEST_SKIP() << "covered by the sample sweep";
    DirProgram original = hlr::compileSource(
        workload::sampleByName(GetParam()).source);
    DirProgram loaded =
        deserializeDirProgram(serializeDirProgram(original));
    for (EncodingScheme scheme : allEncodingSchemes()) {
        auto a = encodeDir(original, scheme);
        auto b = encodeDir(loaded, scheme);
        EXPECT_EQ(a->bitSize(), b->bitSize()) << encodingName(scheme);
        for (size_t i = 0; i < original.size(); ++i)
            EXPECT_EQ(a->bitAddrOf(i), b->bitAddrOf(i));
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, SerializeRoundTrip,
                         ::testing::Values("sieve", "fib", "qsort",
                                           "nest", "queens", "adler",
                                           "synthetic"));

TEST(Serialize, CorruptedByteIsDetected)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("fib").source);
    std::vector<uint8_t> bytes = serializeDirProgram(prog);
    for (size_t at : {size_t{9}, bytes.size() / 2, bytes.size() - 9}) {
        std::vector<uint8_t> bad = bytes;
        bad[at] ^= 0x40;
        EXPECT_THROW(deserializeDirProgram(bad), FatalError)
            << "flip at " << at;
    }
}

TEST(Serialize, TruncationIsDetected)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("gcd").source);
    std::vector<uint8_t> bytes = serializeDirProgram(prog);
    for (size_t keep : {size_t{0}, size_t{8}, bytes.size() / 3,
                        bytes.size() - 1}) {
        std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + keep);
        EXPECT_THROW(deserializeDirProgram(bad), FatalError)
            << "kept " << keep;
    }
}

TEST(Serialize, BadMagicIsDetected)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("gcd").source);
    std::vector<uint8_t> bytes = serializeDirProgram(prog);
    // Rewrite the magic and fix up the checksum so only the magic test
    // can catch it.
    bytes[0] ^= 0xff;
    std::vector<uint8_t> body(bytes.begin(), bytes.end() - 8);
    // Recompute FNV-1a the same way the writer does.
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : body) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    for (int i = 0; i < 8; ++i)
        bytes[body.size() + i] = static_cast<uint8_t>(h >> (8 * i));
    EXPECT_THROW(deserializeDirProgram(bytes), FatalError);
}

TEST(Serialize, FileRoundTrip)
{
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("collatz").source);
    std::string path = ::testing::TempDir() + "/uhm_serialize_test.dirb";
    saveDirProgram(prog, path);
    DirProgram loaded = loadDirProgram(path);
    std::remove(path.c_str());

    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    EXPECT_EQ(runProgram(loaded, EncodingScheme::Huffman, cfg).output,
              std::vector<int64_t>{111});
}

TEST(Serialize, MissingFileIsFatal)
{
    EXPECT_THROW(loadDirProgram("/nonexistent/path/prog.dirb"),
                 FatalError);
}

} // anonymous namespace
} // namespace uhm
