/**
 * @file
 * Tests for the universal host machine: per-opcode semantics, the three
 * machine organizations, cycle accounting and the Figure 4 INTERP flow.
 */

#include <gtest/gtest.h>

#include "hlr/compiler.hh"
#include "hlr/interp.hh"
#include "hlr/parser.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm
{
namespace
{

MachineConfig
configFor(MachineKind kind)
{
    MachineConfig cfg;
    cfg.kind = kind;
    return cfg;
}

std::vector<int64_t>
runOn(const DirProgram &prog, MachineKind kind,
      EncodingScheme scheme = EncodingScheme::Packed,
      const std::vector<int64_t> &input = {})
{
    return runProgram(prog, scheme, configFor(kind), input).output;
}

// ---- per-opcode semantics --------------------------------------------------

/**
 * Build "push the inputs, run one opcode, write the stack residue"
 * programs for every value-producing opcode and check the result on
 * every machine kind.
 */
struct OpCase
{
    Op op;
    std::vector<int64_t> inputs;
    std::vector<int64_t> expected; // written from top of stack down
};

class OpcodeSemantics
    : public ::testing::TestWithParam<std::tuple<OpCase, MachineKind>>
{};

TEST_P(OpcodeSemantics, ProducesExpectedValues)
{
    const auto &[c, kind] = GetParam();
    DirProgram p;
    p.name = "opcase";
    p.numGlobals = 2;
    Contour main_ctr;
    main_ctr.name = "<main>";
    main_ctr.depth = 1;
    main_ctr.slotsAtDepth = {2, 0};
    p.contours.push_back(main_ctr);
    auto emit = [&](DirInstruction ins) {
        p.instrs.push_back(ins);
        p.contourOf.push_back(0);
        return p.instrs.size() - 1;
    };
    p.entry = emit({Op::ENTER, 1, 0, 0});
    p.contours[0].entry = p.entry;
    for (int64_t v : c.inputs)
        emit({Op::PUSHC, v});
    emit({c.op});
    for (size_t i = 0; i < c.expected.size(); ++i)
        emit({Op::WRITE});
    emit({Op::HALT});
    p.validate();

    EXPECT_EQ(runOn(p, kind), c.expected)
        << opName(c.op) << " on " << machineKindName(kind);
}

std::vector<OpCase>
opCases()
{
    return {
        {Op::ADD, {7, 5}, {12}},
        {Op::SUB, {7, 5}, {2}},
        {Op::MUL, {-3, 5}, {-15}},
        {Op::DIV, {17, 5}, {3}},
        {Op::MOD, {17, 5}, {2}},
        {Op::NEG, {9}, {-9}},
        {Op::AND, {12, 10}, {8}},
        {Op::OR, {12, 10}, {14}},
        {Op::XOR, {12, 10}, {6}},
        {Op::NOT, {0}, {-1}},
        {Op::SHL, {3, 4}, {48}},
        {Op::SHR, {-16, 2}, {-4}},
        {Op::EQ, {4, 4}, {1}},
        {Op::NE, {4, 4}, {0}},
        {Op::LT, {3, 4}, {1}},
        {Op::LE, {4, 4}, {1}},
        {Op::GT, {3, 4}, {0}},
        {Op::GE, {3, 4}, {0}},
        {Op::DUP, {6}, {6, 6}},
        {Op::SWAP, {1, 2}, {1, 2}}, // swap then write pops 1 first
        {Op::SEMWORK, {}, {}},      // SEMWORK needs an operand; below
    };
}

std::string
opCaseName(const ::testing::TestParamInfo<std::tuple<OpCase, MachineKind>>
               &info)
{
    return std::string(opName(std::get<0>(info.param).op)) + "_" +
           machineKindName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllMachines, OpcodeSemantics,
    ::testing::Combine(
        ::testing::ValuesIn([] {
            auto cases = opCases();
            cases.pop_back(); // SEMWORK handled separately
            return cases;
        }()),
        ::testing::Values(MachineKind::Conventional, MachineKind::Cached,
                          MachineKind::Dtb)),
    opCaseName);

class MachineKinds : public ::testing::TestWithParam<MachineKind>
{};

TEST_P(MachineKinds, StoreAndLoadLocals)
{
    DirProgram p = hlr::compileSource(
        "program t; var a, b; begin a := 11; b := a + 1; "
        "write a; write b; end.");
    EXPECT_EQ(runOn(p, GetParam()), (std::vector<int64_t>{11, 12}));
}

TEST_P(MachineKinds, ArraysThroughAddrLoadiStorei)
{
    DirProgram p = hlr::compileSource(
        "program t; var a[5], i; begin i := 0; "
        "while i < 5 do a[i] := i * i; i := i + 1; od; "
        "write a[0] + a[1] + a[2] + a[3] + a[4]; end.");
    EXPECT_EQ(runOn(p, GetParam()), std::vector<int64_t>{30});
}

TEST_P(MachineKinds, SemworkSpinsWithoutSideEffects)
{
    DirProgram p;
    p.name = "semwork";
    p.numGlobals = 1;
    Contour main_ctr;
    main_ctr.name = "<main>";
    main_ctr.depth = 1;
    main_ctr.slotsAtDepth = {1, 0};
    p.contours.push_back(main_ctr);
    auto emit = [&](DirInstruction ins) {
        p.instrs.push_back(ins);
        p.contourOf.push_back(0);
        return p.instrs.size() - 1;
    };
    p.entry = emit({Op::ENTER, 1, 0, 0});
    p.contours[0].entry = p.entry;
    emit({Op::PUSHC, 5});
    emit({Op::SEMWORK, 100});
    emit({Op::WRITE});
    emit({Op::HALT});
    p.validate();

    MachineConfig cfg = configFor(GetParam());
    auto image = encodeDir(p, EncodingScheme::Packed);
    Machine machine(*image, cfg);
    RunResult with = machine.run();
    EXPECT_EQ(with.output, std::vector<int64_t>{5});
    // The spin must cost hundreds of semantic cycles.
    EXPECT_GT(with.breakdown.semantic, 400u);
}

TEST_P(MachineKinds, RecursionAndUpLevelAddressing)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("nest").source);
    EXPECT_EQ(runOn(p, GetParam()), std::vector<int64_t>{427});
}

TEST_P(MachineKinds, ReadConsumesInputInOrder)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("echo").source);
    EXPECT_EQ(runOn(p, GetParam(), EncodingScheme::Packed, {2, 40, 2}),
              (std::vector<int64_t>{80, 4, 42}));
}

TEST_P(MachineKinds, ExhaustedInputReadsZero)
{
    DirProgram p = hlr::compileSource(
        "program t; var v; begin read v; write v + 1; end.");
    EXPECT_EQ(runOn(p, GetParam()), std::vector<int64_t>{1});
}

TEST_P(MachineKinds, DivisionByZeroIsFatal)
{
    DirProgram p = hlr::compileSource(
        "program t; var a; begin a := 0; write 3 / a; end.");
    auto image = encodeDir(p, EncodingScheme::Packed);
    Machine machine(*image, configFor(GetParam()));
    EXPECT_THROW(machine.run(), FatalError);
}

TEST_P(MachineKinds, RunawayProgramHitsInstructionBudget)
{
    DirProgram p = hlr::compileSource(
        "program t; var a; begin while 1 do a := a + 1; od; end.");
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg = configFor(GetParam());
    cfg.maxDirInstrs = 10'000;
    Machine machine(*image, cfg);
    EXPECT_THROW(machine.run(), FatalError);
}

TEST_P(MachineKinds, DeterministicAcrossRepeatedRuns)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("sieve").source);
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine machine(*image, configFor(GetParam()));
    RunResult a = machine.run();
    RunResult b = machine.run();
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dirInstrs, b.dirInstrs);
}

TEST_P(MachineKinds, BreakdownSumsToTotal)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("fib").source);
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine machine(*image, configFor(GetParam()));
    RunResult r = machine.run();
    EXPECT_EQ(r.breakdown.total(), r.cycles);
    EXPECT_GT(r.breakdown.fetch, 0u);
    EXPECT_GT(r.breakdown.semantic, 0u);
    EXPECT_GT(r.dirInstrs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, MachineKinds,
    ::testing::Values(MachineKind::Conventional, MachineKind::Cached,
                      MachineKind::Dtb, MachineKind::Dtb2,
                      MachineKind::Tiered),
    [](const ::testing::TestParamInfo<MachineKind> &info) {
        return std::string(machineKindName(info.param));
    });

// ---- differential: all samples x encodings x machines vs the HLR interpreter

struct DiffCase
{
    std::string sample;
    EncodingScheme scheme;
    MachineKind kind;
};

class Differential : public ::testing::TestWithParam<DiffCase>
{};

TEST_P(Differential, MatchesDirectHlrInterpretation)
{
    const DiffCase &c = GetParam();
    const auto &sample = workload::sampleByName(c.sample);
    hlr::AstProgram ast = hlr::parse(sample.source);
    std::vector<int64_t> reference =
        hlr::interpretHlr(ast, sample.input).output;

    DirProgram prog = hlr::compile(ast);
    std::vector<int64_t> got =
        runOn(prog, c.kind, c.scheme, sample.input);
    EXPECT_EQ(got, reference);
    if (!sample.expected.empty()) {
        EXPECT_EQ(got, sample.expected);
    }
}

std::vector<DiffCase>
diffCases()
{
    std::vector<DiffCase> cases;
    for (const auto &sample : workload::samplePrograms()) {
        for (EncodingScheme scheme : allEncodingSchemes()) {
            for (MachineKind kind : {MachineKind::Conventional,
                                     MachineKind::Cached,
                                     MachineKind::Dtb,
                                     MachineKind::Dtb2,
                                     MachineKind::Tiered}) {
                cases.push_back({sample.name, scheme, kind});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Differential, ::testing::ValuesIn(diffCases()),
    [](const ::testing::TestParamInfo<DiffCase> &info) {
        std::string name = info.param.sample;
        name += "_";
        name += encodingName(info.param.scheme);
        name += "_";
        name += machineKindName(info.param.kind);
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

// ---- the Figure 4 INTERP flow ----------------------------------------------

TEST(InterpFlow, FirstTouchMissesThenHits)
{
    DirProgram p = hlr::compileSource(
        "program t; var i; begin i := 3; "
        "while i > 0 do i := i - 1; od; write i; end.");
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg = configFor(MachineKind::Dtb);
    cfg.traceEvents = true;
    Machine machine(*image, cfg);
    RunResult r = machine.run();

    ASSERT_FALSE(r.trace.empty());
    // The very first INTERP must miss and translate.
    EXPECT_NE(r.trace[0].find("miss"), std::string::npos);
    EXPECT_NE(r.trace[0].find("translate"), std::string::npos);
    // Later loop iterations must hit.
    size_t hits = 0, misses = 0;
    for (const std::string &event : r.trace) {
        hits += event.find("interp hit") != std::string::npos;
        misses += event.find("interp miss") != std::string::npos;
    }
    EXPECT_GT(hits, 0u);
    // Each distinct instruction misses exactly once (DTB large enough).
    EXPECT_EQ(misses, static_cast<size_t>(r.stats.get("dtb_misses")));
    EXPECT_EQ(misses, static_cast<size_t>(r.stats.get("dtb_inserts")));
}

TEST(InterpFlow, LoopRereachesUnityHitRatio)
{
    // "If the hit ratio in the DTB were unity, as it will be while the
    // DIR program is in a tight loop..."
    DirProgram p = hlr::compileSource(
        "program t; var i, s; begin i := 2000; s := 0; "
        "while i > 0 do s := s + i; i := i - 1; od; write s; end.");
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine machine(*image, configFor(MachineKind::Dtb));
    RunResult r = machine.run();
    EXPECT_EQ(r.output, std::vector<int64_t>{2001000});
    EXPECT_GT(r.dtbHitRatio, 0.99);
}

TEST(InterpFlow, MissChargesDecodeAndTranslate)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("collatz").source);
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine machine(*image, configFor(MachineKind::Dtb));
    RunResult r = machine.run();
    EXPECT_GT(r.breakdown.decode, 0u);
    EXPECT_GT(r.breakdown.translate, 0u);
    EXPECT_GT(r.measuredG, 0.0);
    // Decode happened only on misses.
    EXPECT_EQ(r.stats.get("dtb_misses") + r.stats.get("dtb_hits"),
              r.dirInstrs);
}

TEST(InterpFlow, ConventionalDecodesEveryInstruction)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("collatz").source);
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine conventional(*image, configFor(MachineKind::Conventional));
    Machine dtb(*image, configFor(MachineKind::Dtb));
    RunResult rc = conventional.run();
    RunResult rd = dtb.run();
    // Same work, same instruction count...
    EXPECT_EQ(rc.dirInstrs, rd.dirInstrs);
    // ...but the DTB machine decodes a small fraction of it.
    EXPECT_LT(rd.breakdown.decode, rc.breakdown.decode / 5);
    // And wins overall on this loopy workload.
    EXPECT_LT(rd.cycles, rc.cycles);
}

TEST(InterpFlow, SmallDtbStillExecutesCorrectly)
{
    // A DTB with a handful of entries thrashes but stays correct.
    DirProgram p = hlr::compileSource(
        workload::sampleByName("sieve").source);
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg = configFor(MachineKind::Dtb);
    cfg.dtb.capacityBytes = 64; // 8 units
    Machine machine(*image, cfg);
    RunResult r = machine.run();
    EXPECT_EQ(r.output, std::vector<int64_t>{168});
    EXPECT_LT(r.dtbHitRatio, 0.9);
}

TEST(InterpFlow, RejectedTranslationsStillExecute)
{
    // unit 1 + no overflow: every multi-instruction translation is
    // rejected, so the machine re-translates forever — and still gets
    // the right answer.
    DirProgram p = hlr::compileSource(
        workload::sampleByName("collatz").source);
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg = configFor(MachineKind::Dtb);
    cfg.dtb.unitShortInstrs = 1;
    cfg.dtb.allowOverflow = false;
    Machine machine(*image, cfg);
    RunResult r = machine.run();
    EXPECT_EQ(r.output, std::vector<int64_t>{111});
    EXPECT_GT(r.stats.get("dtb_rejects"), 0u);
}

TEST(OpcodeCounts, ConventionalCountsSumToInstructions)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("collatz").source);
    auto image = encodeDir(p, EncodingScheme::Packed);
    Machine machine(*image, configFor(MachineKind::Conventional));
    RunResult r = machine.run();
    ASSERT_EQ(r.opcodeCounts.size(), numOps);
    uint64_t total = 0;
    for (uint64_t c : r.opcodeCounts)
        total += c;
    EXPECT_EQ(total, r.dirInstrs);
    EXPECT_GT(r.opcodeCounts[static_cast<size_t>(Op::PUSHL)], 0u);
    EXPECT_EQ(r.opcodeCounts[static_cast<size_t>(Op::HALT)], 1u);
}

TEST(OpcodeCounts, DtbLeavesThemEmpty)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("gcd").source);
    auto image = encodeDir(p, EncodingScheme::Packed);
    Machine machine(*image, configFor(MachineKind::Dtb));
    EXPECT_TRUE(machine.run().opcodeCounts.empty());
}

// ---- two-level dynamic translation (Dtb2) ----------------------------------

TEST(TwoLevelDtb, TightLoopPromotesIntoFirstLevel)
{
    DirProgram p = hlr::compileSource(
        "program t; var i, s; begin i := 3000; s := 0; "
        "while i > 0 do s := s + i; i := i - 1; od; write s; end.");
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine machine(*image, configFor(MachineKind::Dtb2));
    RunResult r = machine.run();
    EXPECT_EQ(r.output, std::vector<int64_t>{4501500});
    // The loop body fits the 512-byte first level: nearly every fetch
    // is served at tau1.
    EXPECT_GT(r.dtbL1HitRatio, 0.99);
}

TEST(TwoLevelDtb, BeatsSingleLevelOnTightLoops)
{
    DirProgram p = hlr::compileSource(
        "program t; var i, s; begin i := 5000; s := 0; "
        "while i > 0 do s := s + i * i; i := i - 1; od; write s; end.");
    auto image = encodeDir(p, EncodingScheme::Huffman);
    Machine one(*image, configFor(MachineKind::Dtb));
    Machine two(*image, configFor(MachineKind::Dtb2));
    RunResult r1 = one.run();
    RunResult r2 = two.run();
    EXPECT_EQ(r1.output, r2.output);
    // The first level serves short fetches at tau1 instead of tauD.
    EXPECT_LT(r2.cycles, r1.cycles);
}

TEST(TwoLevelDtb, CorrectUnderFirstLevelThrash)
{
    // A first level of a few entries thrashes; answers stay right.
    DirProgram p = hlr::compileSource(
        workload::sampleByName("sieve").source);
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg = configFor(MachineKind::Dtb2);
    cfg.dtbL1.capacityBytes = 64;
    cfg.dtbL1.assoc = 2;
    Machine machine(*image, cfg);
    RunResult r = machine.run();
    EXPECT_EQ(r.output, std::vector<int64_t>{168});
    EXPECT_LT(r.dtbL1HitRatio, 0.9);
}

// ---- machine configuration errors ------------------------------------------

TEST(MachineErrors, TooDeepNestingIsFatal)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("nest").source);
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg;
    cfg.layout.maxDepth = 2; // program needs 3
    EXPECT_THROW(Machine(*image, cfg), FatalError);
}

TEST(MachineErrors, OperandStackOverflowIsFatal)
{
    // Unbounded recursion with a pending left operand per activation
    // overflows the operand stack quickly.
    DirProgram p = hlr::compileSource(
        "program t; func f(n); begin return 1 + f(n + 1); end; "
        "begin write f(0); end.");
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg;
    cfg.layout.stackWords = 128;
    cfg.layout.rasDepth = 1 << 20;
    Machine machine(*image, cfg);
    EXPECT_THROW(machine.run(), FatalError);
}

TEST(MachineErrors, RasOverflowIsFatal)
{
    DirProgram p = hlr::compileSource(
        "program t; proc f(); begin call f(); end; "
        "begin call f(); end.");
    auto image = encodeDir(p, EncodingScheme::Packed);
    MachineConfig cfg;
    cfg.layout.rasDepth = 64;
    Machine machine(*image, cfg);
    EXPECT_THROW(machine.run(), FatalError);
}

// ---- cross-machine equivalence of cycle-independent state ------------------

TEST(CrossMachine, IdenticalOutputsDifferentCycleProfiles)
{
    DirProgram p = hlr::compileSource(
        workload::sampleByName("qsort").source);
    auto image = encodeDir(p, EncodingScheme::Huffman);

    Machine conv(*image, configFor(MachineKind::Conventional));
    Machine cached(*image, configFor(MachineKind::Cached));
    Machine dtb(*image, configFor(MachineKind::Dtb));
    RunResult rc = conv.run();
    RunResult rh = cached.run();
    RunResult rd = dtb.run();

    EXPECT_EQ(rc.output, rh.output);
    EXPECT_EQ(rc.output, rd.output);
    EXPECT_EQ(rc.dirInstrs, rh.dirInstrs);
    EXPECT_EQ(rc.dirInstrs, rd.dirInstrs);
    // Semantic work (x) is identical across organizations.
    EXPECT_EQ(rc.breakdown.semantic, rh.breakdown.semantic);
    EXPECT_EQ(rc.breakdown.semantic, rd.breakdown.semantic);
    // Fetch/decode profiles differ.
    EXPECT_NE(rc.cycles, rd.cycles);
}

} // anonymous namespace
} // namespace uhm
