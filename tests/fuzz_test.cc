/**
 * @file
 * Randomized differential tests: generated Contour programs must
 * behave identically under direct HLR interpretation and under every
 * encoding x machine-organization combination.
 */

#include <gtest/gtest.h>

#include "hlr/compiler.hh"
#include "hlr/interp.hh"
#include "hlr/parser.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "uhm/machine.hh"
#include "workload/fuzz.hh"

namespace uhm
{
namespace
{

std::vector<int64_t>
fuzzInput(uint64_t seed)
{
    Rng rng(seed * 131 + 7);
    std::vector<int64_t> input;
    for (int i = 0; i < 16; ++i)
        input.push_back(rng.range(-50, 50));
    return input;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzDifferential, GeneratedProgramCompiles)
{
    workload::FuzzConfig cfg;
    cfg.seed = GetParam();
    std::string source = workload::generateRandomContour(cfg);
    SCOPED_TRACE(source);
    DirProgram prog = hlr::compileSource(source);
    EXPECT_GT(prog.size(), 3u);
    EXPECT_NO_THROW(prog.validate());
}

TEST_P(FuzzDifferential, HlrAndAllMachinePathsAgree)
{
    workload::FuzzConfig cfg;
    cfg.seed = GetParam();
    std::string source = workload::generateRandomContour(cfg);
    SCOPED_TRACE(source);
    std::vector<int64_t> input = fuzzInput(cfg.seed);

    hlr::AstProgram ast = hlr::parse(source);
    std::vector<int64_t> reference =
        hlr::interpretHlr(ast, input).output;
    DirProgram prog = hlr::compile(ast);

    for (EncodingScheme scheme : {EncodingScheme::Packed,
                                  EncodingScheme::Huffman,
                                  EncodingScheme::Quantized}) {
        auto image = encodeDir(prog, scheme);
        for (MachineKind kind : {MachineKind::Conventional,
                                 MachineKind::Dtb, MachineKind::Dtb2,
                                 MachineKind::Tiered}) {
            MachineConfig mc;
            mc.kind = kind;
            Machine machine(*image, mc);
            RunResult r = machine.run(input);
            ASSERT_EQ(r.output, reference)
                << encodingName(scheme) << " / "
                << machineKindName(kind);
        }
    }
}

TEST_P(FuzzDifferential, DeterministicGeneration)
{
    workload::FuzzConfig cfg;
    cfg.seed = GetParam();
    EXPECT_EQ(workload::generateRandomContour(cfg),
              workload::generateRandomContour(cfg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 41));

TEST(FuzzGenerator, BiggerKnobsMakeBiggerPrograms)
{
    workload::FuzzConfig small_cfg;
    small_cfg.seed = 5;
    small_cfg.numProcs = 1;
    small_cfg.stmtsPerBlock = 3;
    workload::FuzzConfig big_cfg;
    big_cfg.seed = 5;
    big_cfg.numProcs = 6;
    big_cfg.stmtsPerBlock = 12;
    EXPECT_LT(workload::generateRandomContour(small_cfg).size(),
              workload::generateRandomContour(big_cfg).size());
}

} // anonymous namespace
} // namespace uhm
