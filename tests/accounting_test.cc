/**
 * @file
 * Precision tests of the machine's cycle accounting: the charges the
 * simulator reports must be *derivable* from first principles — the
 * address trace, the image's bit layout and the timing parameters —
 * not merely plausible.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/translator.hh"
#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"

namespace uhm
{
namespace
{

MachineConfig
tracedConfig(MachineKind kind)
{
    MachineConfig cfg;
    cfg.kind = kind;
    cfg.captureAddressTrace = true;
    return cfg;
}

class AccountingFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = hlr::compileSource(
            workload::sampleByName("collatz").source);
        image_ = encodeDir(prog_, EncodingScheme::Huffman);
    }

    DirProgram prog_;
    std::unique_ptr<EncodedDir> image_;
};

TEST_F(AccountingFixture, ConventionalFetchDerivesFromTrace)
{
    MachineConfig cfg = tracedConfig(MachineKind::Conventional);
    Machine machine(*image_, cfg);
    RunResult r = machine.run();

    // fetch = sum over executed instructions of ceil(bits/64) * tau2.
    uint64_t expected = 0;
    for (uint64_t addr : r.addressTrace) {
        DecodeResult res = image_->decodeAt(addr);
        uint64_t bits = res.nextBitAddr - addr;
        expected += std::max<uint64_t>(1, (bits + 63) / 64) *
                    cfg.timing.tau2;
    }
    EXPECT_EQ(r.breakdown.fetch, expected);
}

TEST_F(AccountingFixture, ConventionalDecodeDerivesFromTrace)
{
    MachineConfig cfg = tracedConfig(MachineKind::Conventional);
    Machine machine(*image_, cfg);
    RunResult r = machine.run();

    uint64_t expected = 0;
    for (uint64_t addr : r.addressTrace)
        expected += cfg.costs.decodeCycles(image_->decodeAt(addr).cost);
    EXPECT_EQ(r.breakdown.decode, expected);
}

TEST_F(AccountingFixture, ExtraDecodePaddingChargesExactly)
{
    MachineConfig base = tracedConfig(MachineKind::Conventional);
    MachineConfig padded = base;
    padded.costs.extraDecodeCycles = 13;

    Machine m1(*image_, base);
    Machine m2(*image_, padded);
    RunResult r1 = m1.run();
    RunResult r2 = m2.run();
    EXPECT_EQ(r2.breakdown.decode - r1.breakdown.decode,
              13 * r1.dirInstrs);
    // Nothing else moves.
    EXPECT_EQ(r1.breakdown.fetch, r2.breakdown.fetch);
    EXPECT_EQ(r1.breakdown.semantic, r2.breakdown.semantic);
}

TEST_F(AccountingFixture, DtbDispatchAccountsLookupsAndShortFetches)
{
    MachineConfig cfg = tracedConfig(MachineKind::Dtb);
    Machine machine(*image_, cfg);
    RunResult r = machine.run();

    // dispatch = tauD per INTERP lookup + tauD per short-instr fetch
    //          + trap cycles per miss + tau1 per INTERP-stack pop.
    uint64_t lookups = r.dirInstrs * cfg.timing.tauD;
    uint64_t fetches = r.stats.get("short_instrs") * cfg.timing.tauD;
    uint64_t traps = r.stats.get("dtb_misses") * cfg.trapCycles;
    uint64_t slack = r.breakdown.dispatch - lookups - fetches - traps;
    // The remainder is exactly the INTERP-stack pops (one level-1 read
    // each); bounded by the number of control transfers.
    EXPECT_LT(slack, r.dirInstrs * cfg.timing.tau1);
}

TEST_F(AccountingFixture, TranslateChargesPerEmittedShortInstr)
{
    MachineConfig cfg = tracedConfig(MachineKind::Dtb);
    Machine machine(*image_, cfg);
    RunResult r = machine.run();

    // Every miss translates once; translate = sum over misses of
    // len * (1 + tauD).
    DynamicTranslator translator(*image_);
    std::set<uint64_t> missed;
    uint64_t expected = 0;
    // Replay: first touch of each address is the (only) miss for this
    // big-enough DTB.
    for (uint64_t addr : r.addressTrace) {
        if (missed.insert(addr).second) {
            expected += translator.translate(addr).code.size() *
                        (1 + cfg.timing.tauD);
        }
    }
    EXPECT_EQ(r.stats.get("dtb_misses"), missed.size());
    EXPECT_EQ(r.breakdown.translate, expected);
}

TEST_F(AccountingFixture, SemanticCyclesScaleWithTau1)
{
    MachineConfig slow = tracedConfig(MachineKind::Conventional);
    slow.timing.tau1 = 3;
    Machine m1(*image_, tracedConfig(MachineKind::Conventional));
    Machine m2(*image_, slow);
    RunResult r1 = m1.run();
    RunResult r2 = m2.run();
    // Micro-instruction fetches and stack references triple; data
    // references to level 2 do not.
    EXPECT_GT(r2.breakdown.semantic, r1.breakdown.semantic);
    EXPECT_LT(r2.breakdown.semantic, 3 * r1.breakdown.semantic);
}

TEST_F(AccountingFixture, CachedFetchBoundedByExtremes)
{
    MachineConfig cfg = tracedConfig(MachineKind::Cached);
    Machine machine(*image_, cfg);
    RunResult r = machine.run();

    uint64_t refs = r.stats.get("dir_fetch_refs");
    // Every reference costs between tauD (hit) and tau2 (miss).
    EXPECT_GE(r.breakdown.fetch, refs * cfg.timing.tauD);
    EXPECT_LE(r.breakdown.fetch, refs * cfg.timing.tau2);
    // And the exact value follows from the hit/miss counts.
    uint64_t hits = r.stats.get("icache_hits");
    uint64_t misses = r.stats.get("icache_misses");
    EXPECT_EQ(refs, hits + misses);
    EXPECT_EQ(r.breakdown.fetch,
              hits * cfg.timing.tauD + misses * cfg.timing.tau2);
}

TEST_F(AccountingFixture, AddressTraceIdenticalAcrossMachineKinds)
{
    std::vector<uint64_t> reference;
    for (MachineKind kind : {MachineKind::Conventional,
                             MachineKind::Cached, MachineKind::Dtb,
                             MachineKind::Dtb2, MachineKind::Tiered}) {
        Machine machine(*image_, tracedConfig(kind));
        RunResult r = machine.run();
        if (reference.empty())
            reference = r.addressTrace;
        else
            EXPECT_EQ(r.addressTrace, reference)
                << machineKindName(kind);
    }
}

TEST_F(AccountingFixture, TimingParametersScaleFetchLinearly)
{
    MachineConfig cfg = tracedConfig(MachineKind::Conventional);
    Machine m1(*image_, cfg);
    RunResult r1 = m1.run();

    cfg.timing.tau2 = 20;
    Machine m2(*image_, cfg);
    RunResult r2 = m2.run();
    EXPECT_EQ(r2.breakdown.fetch, 2 * r1.breakdown.fetch);
}

} // anonymous namespace
} // namespace uhm
