/**
 * @file
 * Tests for the section-7 analytic model, anchored digit-for-digit to
 * the paper's printed Tables 2 and 3.
 */

#include <gtest/gtest.h>

#include "analytic/model.hh"

namespace uhm::analytic
{
namespace
{

// ---- the paper's printed grids, verbatim -----------------------------------

/** Table 2 of the paper: rows d = 10, 20, 30; cols x = 5..30. */
constexpr double paperTable2Values[3][6] = {
    {37.65, 29.09, 23.70, 20.00, 17.30, 15.24},
    {59.05, 47.69, 40.00, 34.44, 30.24, 26.96},
    {73.60, 61.33, 52.57, 46.00, 40.89, 36.80},
};

/** Table 3 of the paper. */
constexpr double paperTable3Values[3][6] = {
    {78.82, 60.91, 49.63, 41.88, 36.22, 31.90},
    {92.38, 74.62, 62.58, 53.89, 47.32, 42.17},
    {101.60, 84.67, 72.57, 63.50, 56.44, 50.80},
};

TEST(PaperTables, Table2ReproducedToTwoDecimals)
{
    const auto &ds = paperDGrid();
    const auto &xs = paperXGrid();
    for (size_t i = 0; i < ds.size(); ++i) {
        for (size_t j = 0; j < xs.size(); ++j) {
            EXPECT_NEAR(paperTable2(ds[i], xs[j]),
                        paperTable2Values[i][j], 0.006)
                << "d=" << ds[i] << " x=" << xs[j];
        }
    }
}

TEST(PaperTables, Table3ReproducedToTwoDecimals)
{
    const auto &ds = paperDGrid();
    const auto &xs = paperXGrid();
    for (size_t i = 0; i < ds.size(); ++i) {
        for (size_t j = 0; j < xs.size(); ++j) {
            EXPECT_NEAR(paperTable3(ds[i], xs[j]),
                        paperTable3Values[i][j], 0.006)
                << "d=" << ds[i] << " x=" << xs[j];
        }
    }
}

TEST(PaperTables, GridsMatchThePaper)
{
    EXPECT_EQ(paperDGrid(), (std::vector<double>{10, 20, 30}));
    EXPECT_EQ(paperXGrid(), (std::vector<double>{5, 10, 15, 20, 25, 30}));
}

// ---- the section-7 expressions ---------------------------------------------

TEST(Model, T1AtPaperOperatingPoint)
{
    ModelParams p; // defaults are the paper's values, d=10, x=5
    EXPECT_DOUBLE_EQ(t1(p), 10 + 10 + 5);
}

TEST(Model, T2Components)
{
    ModelParams p;
    // 3*2 + 0.2*10 + 0.2*(10+15) + 5 = 6 + 2 + 5 + 5.
    EXPECT_DOUBLE_EQ(t2(p), 18.0);
}

TEST(Model, T3Components)
{
    ModelParams p;
    // 0.9*1*2 + 0.1*1*10 + 10 + 5 = 1.8 + 1 + 15.
    EXPECT_DOUBLE_EQ(t3(p), 17.8);
}

TEST(Model, PerfectDtbEliminatesFetchAndDecode)
{
    ModelParams p;
    p.hD = 1.0;
    // With unity hit ratio only s1*tauD + x remain.
    EXPECT_DOUBLE_EQ(t2(p), p.s1 * p.tauD + p.x);
}

TEST(Model, PerfectCacheStillPaysDecode)
{
    ModelParams p;
    p.hc = 1.0;
    EXPECT_DOUBLE_EQ(t3(p), p.s2 * p.tauD + p.d + p.x);
}

TEST(Model, F2PositiveAcrossPaperGrid)
{
    // "The DTB does have the potential to improve performance
    // significantly": T1 > T2 everywhere on the grid.
    for (double d : paperDGrid()) {
        for (double x : paperXGrid()) {
            ModelParams p;
            p.d = d;
            p.g = 1.5 * d;
            p.x = x;
            EXPECT_GT(f2(p), 0.0) << "d=" << d << " x=" << x;
        }
    }
}

TEST(Model, FiguresOfMeritDecreaseWithX)
{
    // "the figures-of-merit decrease ... as x increases."
    for (double d : paperDGrid()) {
        double prev2 = 1e9, prev3 = 1e9;
        for (double x : paperXGrid()) {
            double v2 = paperTable2(d, x);
            double v3 = paperTable3(d, x);
            EXPECT_LT(v2, prev2);
            EXPECT_LT(v3, prev3);
            prev2 = v2;
            prev3 = v3;
        }
    }
}

TEST(Model, FiguresOfMeritDecreaseAsDDecreases)
{
    // "...as d decreases" (i.e. they increase with d).
    for (double x : paperXGrid()) {
        EXPECT_LT(paperTable2(10, x), paperTable2(20, x));
        EXPECT_LT(paperTable2(20, x), paperTable2(30, x));
        EXPECT_LT(paperTable3(10, x), paperTable3(20, x));
        EXPECT_LT(paperTable3(20, x), paperTable3(30, x));
    }
}

TEST(Model, DtbUnattractiveWhenDecodingTrivial)
{
    // "the DTB is not particularly effective if the task of decoding is
    // trivial or if the time spent in the semantic routines is much
    // greater": with d ~ 0 and huge x the benefit vanishes.
    ModelParams p;
    p.d = 1;
    p.g = 1.5;
    p.x = 200;
    EXPECT_LT(f2(p), 3.0);
}

TEST(Model, VectorMachineRegime)
{
    // Machines "with vector instructions which are heavily used" have
    // enormous x; both figures of merit collapse.
    EXPECT_LT(paperTable2(10, 1000), 1.0);
    EXPECT_LT(paperTable3(10, 1000), 2.0);
}

} // anonymous namespace
} // namespace uhm::analytic
