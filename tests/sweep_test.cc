/**
 * @file
 * Determinism tests for the parallel sweep harness: the same sweep run
 * at --jobs 1 and --jobs 8 must produce identical merged counter
 * values and byte-identical JSONL reports. This is the acceptance
 * contract of bench/bench_common.hh's SweepRunner, and the CI tsan job
 * runs this binary under ThreadSanitizer as well.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "support/huffman.hh"

namespace uhm::bench
{
namespace
{

/** A small but heterogeneous batch: three programs x three machines. */
std::vector<SweepPoint>
testBatch()
{
    const std::vector<std::string> names = {"fib", "collatz", "sieve"};
    const std::vector<MachineKind> kinds = {MachineKind::Conventional,
                                            MachineKind::Cached,
                                            MachineKind::Dtb,
                                            MachineKind::Tiered};
    std::vector<SweepPoint> points;
    for (const std::string &name : names) {
        for (MachineKind kind : kinds) {
            SweepPoint point;
            point.label = name;
            for (const auto &sample : workload::samplePrograms()) {
                if (sample.name == name) {
                    point.program = hlr::compileSource(sample.source);
                    point.input = sample.input;
                }
            }
            point.config = makeConfig(kind);
            points.push_back(std::move(point));
        }
    }
    return points;
}

TEST(Sweep, SerialAndParallelReportsAreByteIdentical)
{
    std::vector<SweepPoint> points = testBatch();

    SweepRunner serial(1);
    SweepRunner parallel(8);
    SweepReport one = runSweep(serial, points);
    SweepReport eight = runSweep(parallel, points);

    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_EQ(parallel.jobs(), 8u);
    EXPECT_EQ(one.jsonl, eight.jsonl);
}

/**
 * The decode fast path (table decoder + per-image memos) must be
 * invisible in the report: a --jobs=8 sweep run with the fast path
 * produces the same JSONL bytes as a --jobs=1 run forced onto the
 * reference tree walk. Simulated counters depend only on the image,
 * never on which host decode path ran.
 */
TEST(Sweep, DecodeFastPathDoesNotChangeReports)
{
    std::vector<SweepPoint> points = testBatch();

    SweepReport fast, reference;
    {
        ScopedHuffmanDecodeKind kind(HuffmanDecodeKind::Table);
        SweepRunner parallel(8);
        fast = runSweep(parallel, points);
    }
    {
        ScopedHuffmanDecodeKind kind(HuffmanDecodeKind::Tree);
        SweepRunner serial(1);
        reference = runSweep(serial, points);
    }
    EXPECT_EQ(fast.jsonl, reference.jsonl);
    EXPECT_EQ(fast.counters.values(), reference.counters.values());
}

TEST(Sweep, SerialAndParallelMergedCountersAgree)
{
    std::vector<SweepPoint> points = testBatch();

    SweepRunner serial(1);
    SweepRunner parallel(8);
    SweepReport one = runSweep(serial, points);
    SweepReport eight = runSweep(parallel, points);

    EXPECT_EQ(one.counters.shards(), points.size());
    EXPECT_EQ(eight.counters.shards(), points.size());
    EXPECT_EQ(one.counters.values(), eight.counters.values());
    EXPECT_GT(eight.counters.get("machine.dir_instrs"), 0u);
}

TEST(Sweep, ParallelRunsAreRepeatable)
{
    std::vector<SweepPoint> points = testBatch();
    SweepRunner runner(8);
    SweepReport first = runSweep(runner, points);
    SweepReport second = runSweep(runner, points);
    EXPECT_EQ(first.jsonl, second.jsonl);
    EXPECT_EQ(first.counters.values(), second.counters.values());
}

TEST(Sweep, ReportShapeMatchesTheDocumentedSchema)
{
    std::vector<SweepPoint> points = testBatch();
    SweepRunner runner(4);
    SweepReport report = runSweep(runner, points);

    ASSERT_EQ(report.results.size(), points.size());
    size_t lines = 0;
    for (char c : report.jsonl)
        if (c == '\n')
            ++lines;
    // One sweep_point line per point, one sweep_hist line per point
    // that registered histograms (the DTB-bearing organizations), one
    // sweep_sample line per occupancy sample (none here — sampling is
    // off by default), plus one sweep_summary line.
    size_t expected = points.size() + 1;
    for (const RunResult &r : report.results) {
        expected += r.histograms.empty() ? 0 : 1;
        expected += r.samples.size();
    }
    EXPECT_EQ(lines, expected);
    EXPECT_NE(report.jsonl.find("\"type\":\"sweep_point\""),
              std::string::npos);
    EXPECT_NE(report.jsonl.find("\"type\":\"sweep_hist\""),
              std::string::npos);
    EXPECT_EQ(report.jsonl.find("\"type\":\"sweep_sample\""),
              std::string::npos);
    EXPECT_NE(report.jsonl.find("\"type\":\"sweep_summary\""),
              std::string::npos);
    // The summary line carries the merged histograms.
    EXPECT_NE(report.jsonl.find("\"histograms\":{"), std::string::npos);
    EXPECT_NE(report.jsonl.find("\"translate.latency_cycles\""),
              std::string::npos);
    // Per-point results arrive in point order, untouched by scheduling.
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_GT(report.results[i].dirInstrs, 0u) << "point " << i;
}

TEST(Sweep, SampledSweepsStayByteIdentical)
{
    // The interval sampler's series rides the report as sweep_sample
    // lines; it must obey the same determinism contract as everything
    // else, and the histogram aggregate must match a by-hand fold.
    std::vector<SweepPoint> points = testBatch();
    for (SweepPoint &point : points)
        point.config.sampleIntervalCycles = 2048;

    SweepRunner serial(1);
    SweepRunner parallel(8);
    SweepReport one = runSweep(serial, points);
    SweepReport eight = runSweep(parallel, points);
    EXPECT_EQ(one.jsonl, eight.jsonl);
    EXPECT_NE(one.jsonl.find("\"type\":\"sweep_sample\""),
              std::string::npos);

    obs::MergedHistograms byHand;
    for (const RunResult &r : one.results)
        byHand.accumulate(r.histograms);
    EXPECT_EQ(one.histograms.values(), byHand.values());
    EXPECT_EQ(eight.histograms.values(), byHand.values());
}

TEST(Sweep, MergedCountersEqualTheSumOfPerPointCounters)
{
    std::vector<SweepPoint> points = testBatch();
    SweepRunner runner(8);
    SweepReport report = runSweep(runner, points);

    obs::MergedCounters byHand;
    for (const RunResult &r : report.results)
        byHand.accumulate(r.counters);
    EXPECT_EQ(report.counters.values(), byHand.values());
}

TEST(Sweep, GridHelpersAreJobCountInvariant)
{
    // The hoisted helpers used by the table benches must obey the same
    // contract. Use a truncated steered grid to keep the test quick.
    std::vector<SteeredPoint> grid = steeredGrid();
    ASSERT_GE(grid.size(), 4u);
    grid.resize(4);

    SweepRunner serial(1);
    SweepRunner parallel(8);
    std::vector<MeasuredPoint> one = measureSteeredGrid(serial, grid);
    std::vector<MeasuredPoint> eight =
        measureSteeredGrid(parallel, grid);

    ASSERT_EQ(one.size(), eight.size());
    for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].t1, eight[i].t1) << "point " << i;
        EXPECT_EQ(one[i].t2, eight[i].t2) << "point " << i;
        EXPECT_EQ(one[i].t3, eight[i].t3) << "point " << i;
        EXPECT_EQ(one[i].dirInstrs, eight[i].dirInstrs) << "point " << i;
    }
}

} // anonymous namespace
} // namespace uhm::bench
