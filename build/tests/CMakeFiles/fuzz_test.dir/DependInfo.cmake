
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytic/CMakeFiles/uhm_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uhm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/uhm_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/hlr/CMakeFiles/uhm_hlr.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uhm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/psder/CMakeFiles/uhm_psder.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uhm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/uhm/CMakeFiles/uhm_uhm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/uhm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
