file(REMOVE_RECURSE
  "CMakeFiles/uhm_test.dir/uhm_test.cc.o"
  "CMakeFiles/uhm_test.dir/uhm_test.cc.o.d"
  "uhm_test"
  "uhm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
