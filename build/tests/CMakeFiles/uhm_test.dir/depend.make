# Empty dependencies file for uhm_test.
# This may be replaced when dependencies are built.
