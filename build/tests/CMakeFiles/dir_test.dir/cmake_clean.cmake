file(REMOVE_RECURSE
  "CMakeFiles/dir_test.dir/dir_test.cc.o"
  "CMakeFiles/dir_test.dir/dir_test.cc.o.d"
  "dir_test"
  "dir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
