# Empty dependencies file for psder_test.
# This may be replaced when dependencies are built.
