file(REMOVE_RECURSE
  "CMakeFiles/psder_test.dir/psder_test.cc.o"
  "CMakeFiles/psder_test.dir/psder_test.cc.o.d"
  "psder_test"
  "psder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
