# Empty dependencies file for hlr_test.
# This may be replaced when dependencies are built.
