file(REMOVE_RECURSE
  "CMakeFiles/hlr_test.dir/hlr_test.cc.o"
  "CMakeFiles/hlr_test.dir/hlr_test.cc.o.d"
  "hlr_test"
  "hlr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
