# Empty dependencies file for bench_encoding_compaction.
# This may be replaced when dependencies are built.
