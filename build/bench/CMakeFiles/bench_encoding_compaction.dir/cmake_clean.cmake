file(REMOVE_RECURSE
  "CMakeFiles/bench_encoding_compaction.dir/bench_encoding_compaction.cc.o"
  "CMakeFiles/bench_encoding_compaction.dir/bench_encoding_compaction.cc.o.d"
  "bench_encoding_compaction"
  "bench_encoding_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
