# Empty compiler generated dependencies file for bench_fig1_repr_space.
# This may be replaced when dependencies are built.
