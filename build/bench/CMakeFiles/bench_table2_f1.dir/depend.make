# Empty dependencies file for bench_table2_f1.
# This may be replaced when dependencies are built.
