file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dtb.dir/bench_ablation_dtb.cc.o"
  "CMakeFiles/bench_ablation_dtb.dir/bench_ablation_dtb.cc.o.d"
  "bench_ablation_dtb"
  "bench_ablation_dtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
