# Empty compiler generated dependencies file for bench_ablation_dtb.
# This may be replaced when dependencies are built.
