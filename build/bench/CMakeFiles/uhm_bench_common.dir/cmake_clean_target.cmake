file(REMOVE_RECURSE
  "libuhm_bench_common.a"
)
