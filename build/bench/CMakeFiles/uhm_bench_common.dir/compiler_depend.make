# Empty compiler generated dependencies file for uhm_bench_common.
# This may be replaced when dependencies are built.
