file(REMOVE_RECURSE
  "CMakeFiles/uhm_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/uhm_bench_common.dir/bench_common.cc.o.d"
  "libuhm_bench_common.a"
  "libuhm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
