# Empty dependencies file for bench_fig4_interp_flow.
# This may be replaced when dependencies are built.
