file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_uhm_org.dir/bench_fig3_uhm_org.cc.o"
  "CMakeFiles/bench_fig3_uhm_org.dir/bench_fig3_uhm_org.cc.o.d"
  "bench_fig3_uhm_org"
  "bench_fig3_uhm_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_uhm_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
