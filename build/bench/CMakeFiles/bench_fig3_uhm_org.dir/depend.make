# Empty dependencies file for bench_fig3_uhm_org.
# This may be replaced when dependencies are built.
