file(REMOVE_RECURSE
  "CMakeFiles/bench_export.dir/bench_export.cc.o"
  "CMakeFiles/bench_export.dir/bench_export.cc.o.d"
  "bench_export"
  "bench_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
