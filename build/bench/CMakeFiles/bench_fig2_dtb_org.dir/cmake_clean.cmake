file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_dtb_org.dir/bench_fig2_dtb_org.cc.o"
  "CMakeFiles/bench_fig2_dtb_org.dir/bench_fig2_dtb_org.cc.o.d"
  "bench_fig2_dtb_org"
  "bench_fig2_dtb_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_dtb_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
