# Empty dependencies file for bench_fig2_dtb_org.
# This may be replaced when dependencies are built.
