file(REMOVE_RECURSE
  "CMakeFiles/bench_semantic_level.dir/bench_semantic_level.cc.o"
  "CMakeFiles/bench_semantic_level.dir/bench_semantic_level.cc.o.d"
  "bench_semantic_level"
  "bench_semantic_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantic_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
