# Empty dependencies file for bench_semantic_level.
# This may be replaced when dependencies are built.
