# Empty dependencies file for bench_multilevel_dtb.
# This may be replaced when dependencies are built.
