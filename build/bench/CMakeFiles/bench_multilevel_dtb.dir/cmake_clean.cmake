file(REMOVE_RECURSE
  "CMakeFiles/bench_multilevel_dtb.dir/bench_multilevel_dtb.cc.o"
  "CMakeFiles/bench_multilevel_dtb.dir/bench_multilevel_dtb.cc.o.d"
  "bench_multilevel_dtb"
  "bench_multilevel_dtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multilevel_dtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
