# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compiler_explorer "/root/repo/build/examples/compiler_explorer" "nest")
set_tests_properties(example_compiler_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_translation "/root/repo/build/examples/dynamic_translation_demo" "fib")
set_tests_properties(example_dynamic_translation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_sample "/root/repo/build/examples/uhm_cli" "sieve" "--machine=dtb2")
set_tests_properties(example_cli_sample PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_file "/root/repo/build/examples/uhm_cli" "/root/repo/examples/programs/stats.ctr" "--input=3,10,20,30" "--machine=cached" "--encoding=quantized")
set_tests_properties(example_cli_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_mandelbrot "/root/repo/build/examples/uhm_cli" "/root/repo/examples/programs/mandelbrot.ctr" "--stats")
set_tests_properties(example_cli_mandelbrot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_dir_assembly "/root/repo/build/examples/uhm_cli" "/root/repo/examples/programs/countdown.dira")
set_tests_properties(example_cli_dir_assembly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
