# Empty compiler generated dependencies file for dynamic_translation_demo.
# This may be replaced when dependencies are built.
