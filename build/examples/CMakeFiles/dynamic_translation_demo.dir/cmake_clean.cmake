file(REMOVE_RECURSE
  "CMakeFiles/dynamic_translation_demo.dir/dynamic_translation_demo.cpp.o"
  "CMakeFiles/dynamic_translation_demo.dir/dynamic_translation_demo.cpp.o.d"
  "dynamic_translation_demo"
  "dynamic_translation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_translation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
