file(REMOVE_RECURSE
  "CMakeFiles/uhm_cli.dir/uhm_cli.cpp.o"
  "CMakeFiles/uhm_cli.dir/uhm_cli.cpp.o.d"
  "uhm_cli"
  "uhm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
