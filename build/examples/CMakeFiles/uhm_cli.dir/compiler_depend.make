# Empty compiler generated dependencies file for uhm_cli.
# This may be replaced when dependencies are built.
