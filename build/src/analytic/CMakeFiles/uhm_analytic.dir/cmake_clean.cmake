file(REMOVE_RECURSE
  "CMakeFiles/uhm_analytic.dir/model.cc.o"
  "CMakeFiles/uhm_analytic.dir/model.cc.o.d"
  "libuhm_analytic.a"
  "libuhm_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
