# Empty dependencies file for uhm_analytic.
# This may be replaced when dependencies are built.
