file(REMOVE_RECURSE
  "libuhm_analytic.a"
)
