
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psder/micro_asm.cc" "src/psder/CMakeFiles/uhm_psder.dir/micro_asm.cc.o" "gcc" "src/psder/CMakeFiles/uhm_psder.dir/micro_asm.cc.o.d"
  "/root/repo/src/psder/micro_isa.cc" "src/psder/CMakeFiles/uhm_psder.dir/micro_isa.cc.o" "gcc" "src/psder/CMakeFiles/uhm_psder.dir/micro_isa.cc.o.d"
  "/root/repo/src/psder/routines.cc" "src/psder/CMakeFiles/uhm_psder.dir/routines.cc.o" "gcc" "src/psder/CMakeFiles/uhm_psder.dir/routines.cc.o.d"
  "/root/repo/src/psder/short_isa.cc" "src/psder/CMakeFiles/uhm_psder.dir/short_isa.cc.o" "gcc" "src/psder/CMakeFiles/uhm_psder.dir/short_isa.cc.o.d"
  "/root/repo/src/psder/staging.cc" "src/psder/CMakeFiles/uhm_psder.dir/staging.cc.o" "gcc" "src/psder/CMakeFiles/uhm_psder.dir/staging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dir/CMakeFiles/uhm_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uhm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
