file(REMOVE_RECURSE
  "CMakeFiles/uhm_psder.dir/micro_asm.cc.o"
  "CMakeFiles/uhm_psder.dir/micro_asm.cc.o.d"
  "CMakeFiles/uhm_psder.dir/micro_isa.cc.o"
  "CMakeFiles/uhm_psder.dir/micro_isa.cc.o.d"
  "CMakeFiles/uhm_psder.dir/routines.cc.o"
  "CMakeFiles/uhm_psder.dir/routines.cc.o.d"
  "CMakeFiles/uhm_psder.dir/short_isa.cc.o"
  "CMakeFiles/uhm_psder.dir/short_isa.cc.o.d"
  "CMakeFiles/uhm_psder.dir/staging.cc.o"
  "CMakeFiles/uhm_psder.dir/staging.cc.o.d"
  "libuhm_psder.a"
  "libuhm_psder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_psder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
