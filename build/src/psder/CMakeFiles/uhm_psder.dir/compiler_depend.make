# Empty compiler generated dependencies file for uhm_psder.
# This may be replaced when dependencies are built.
