file(REMOVE_RECURSE
  "libuhm_psder.a"
)
