# Empty compiler generated dependencies file for uhm_mem.
# This may be replaced when dependencies are built.
