file(REMOVE_RECURSE
  "CMakeFiles/uhm_mem.dir/cache.cc.o"
  "CMakeFiles/uhm_mem.dir/cache.cc.o.d"
  "CMakeFiles/uhm_mem.dir/replacement.cc.o"
  "CMakeFiles/uhm_mem.dir/replacement.cc.o.d"
  "libuhm_mem.a"
  "libuhm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
