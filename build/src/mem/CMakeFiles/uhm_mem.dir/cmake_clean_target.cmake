file(REMOVE_RECURSE
  "libuhm_mem.a"
)
