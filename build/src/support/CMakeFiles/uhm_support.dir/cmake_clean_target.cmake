file(REMOVE_RECURSE
  "libuhm_support.a"
)
