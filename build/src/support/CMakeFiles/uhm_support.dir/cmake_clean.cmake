file(REMOVE_RECURSE
  "CMakeFiles/uhm_support.dir/bitstream.cc.o"
  "CMakeFiles/uhm_support.dir/bitstream.cc.o.d"
  "CMakeFiles/uhm_support.dir/huffman.cc.o"
  "CMakeFiles/uhm_support.dir/huffman.cc.o.d"
  "CMakeFiles/uhm_support.dir/logging.cc.o"
  "CMakeFiles/uhm_support.dir/logging.cc.o.d"
  "CMakeFiles/uhm_support.dir/stats.cc.o"
  "CMakeFiles/uhm_support.dir/stats.cc.o.d"
  "CMakeFiles/uhm_support.dir/table.cc.o"
  "CMakeFiles/uhm_support.dir/table.cc.o.d"
  "libuhm_support.a"
  "libuhm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
