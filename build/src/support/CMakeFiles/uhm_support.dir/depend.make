# Empty dependencies file for uhm_support.
# This may be replaced when dependencies are built.
