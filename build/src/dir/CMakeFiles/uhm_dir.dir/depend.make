# Empty dependencies file for uhm_dir.
# This may be replaced when dependencies are built.
