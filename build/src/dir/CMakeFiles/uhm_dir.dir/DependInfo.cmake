
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dir/asm.cc" "src/dir/CMakeFiles/uhm_dir.dir/asm.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/asm.cc.o.d"
  "/root/repo/src/dir/enc_contextual.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_contextual.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_contextual.cc.o.d"
  "/root/repo/src/dir/enc_expanded.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_expanded.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_expanded.cc.o.d"
  "/root/repo/src/dir/enc_huffman.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_huffman.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_huffman.cc.o.d"
  "/root/repo/src/dir/enc_huffman_common.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_huffman_common.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_huffman_common.cc.o.d"
  "/root/repo/src/dir/enc_packed.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_packed.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_packed.cc.o.d"
  "/root/repo/src/dir/enc_pair_huffman.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_pair_huffman.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_pair_huffman.cc.o.d"
  "/root/repo/src/dir/enc_quantized.cc" "src/dir/CMakeFiles/uhm_dir.dir/enc_quantized.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/enc_quantized.cc.o.d"
  "/root/repo/src/dir/encoding.cc" "src/dir/CMakeFiles/uhm_dir.dir/encoding.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/encoding.cc.o.d"
  "/root/repo/src/dir/fusion.cc" "src/dir/CMakeFiles/uhm_dir.dir/fusion.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/fusion.cc.o.d"
  "/root/repo/src/dir/isa.cc" "src/dir/CMakeFiles/uhm_dir.dir/isa.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/isa.cc.o.d"
  "/root/repo/src/dir/program.cc" "src/dir/CMakeFiles/uhm_dir.dir/program.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/program.cc.o.d"
  "/root/repo/src/dir/serialize.cc" "src/dir/CMakeFiles/uhm_dir.dir/serialize.cc.o" "gcc" "src/dir/CMakeFiles/uhm_dir.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/uhm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
