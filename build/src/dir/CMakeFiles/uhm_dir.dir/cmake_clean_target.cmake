file(REMOVE_RECURSE
  "libuhm_dir.a"
)
