file(REMOVE_RECURSE
  "CMakeFiles/uhm_dir.dir/asm.cc.o"
  "CMakeFiles/uhm_dir.dir/asm.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_contextual.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_contextual.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_expanded.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_expanded.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_huffman.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_huffman.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_huffman_common.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_huffman_common.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_packed.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_packed.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_pair_huffman.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_pair_huffman.cc.o.d"
  "CMakeFiles/uhm_dir.dir/enc_quantized.cc.o"
  "CMakeFiles/uhm_dir.dir/enc_quantized.cc.o.d"
  "CMakeFiles/uhm_dir.dir/encoding.cc.o"
  "CMakeFiles/uhm_dir.dir/encoding.cc.o.d"
  "CMakeFiles/uhm_dir.dir/fusion.cc.o"
  "CMakeFiles/uhm_dir.dir/fusion.cc.o.d"
  "CMakeFiles/uhm_dir.dir/isa.cc.o"
  "CMakeFiles/uhm_dir.dir/isa.cc.o.d"
  "CMakeFiles/uhm_dir.dir/program.cc.o"
  "CMakeFiles/uhm_dir.dir/program.cc.o.d"
  "CMakeFiles/uhm_dir.dir/serialize.cc.o"
  "CMakeFiles/uhm_dir.dir/serialize.cc.o.d"
  "libuhm_dir.a"
  "libuhm_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
