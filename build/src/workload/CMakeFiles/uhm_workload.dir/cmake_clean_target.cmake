file(REMOVE_RECURSE
  "libuhm_workload.a"
)
