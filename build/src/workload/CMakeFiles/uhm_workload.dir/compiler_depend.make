# Empty compiler generated dependencies file for uhm_workload.
# This may be replaced when dependencies are built.
