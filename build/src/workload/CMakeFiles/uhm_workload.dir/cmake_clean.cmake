file(REMOVE_RECURSE
  "CMakeFiles/uhm_workload.dir/fuzz.cc.o"
  "CMakeFiles/uhm_workload.dir/fuzz.cc.o.d"
  "CMakeFiles/uhm_workload.dir/samples.cc.o"
  "CMakeFiles/uhm_workload.dir/samples.cc.o.d"
  "CMakeFiles/uhm_workload.dir/synthetic.cc.o"
  "CMakeFiles/uhm_workload.dir/synthetic.cc.o.d"
  "libuhm_workload.a"
  "libuhm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
