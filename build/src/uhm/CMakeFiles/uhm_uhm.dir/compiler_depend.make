# Empty compiler generated dependencies file for uhm_uhm.
# This may be replaced when dependencies are built.
