file(REMOVE_RECURSE
  "CMakeFiles/uhm_uhm.dir/machine.cc.o"
  "CMakeFiles/uhm_uhm.dir/machine.cc.o.d"
  "libuhm_uhm.a"
  "libuhm_uhm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_uhm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
