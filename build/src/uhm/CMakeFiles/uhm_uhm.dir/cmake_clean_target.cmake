file(REMOVE_RECURSE
  "libuhm_uhm.a"
)
