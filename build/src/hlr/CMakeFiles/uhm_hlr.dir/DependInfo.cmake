
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hlr/compiler.cc" "src/hlr/CMakeFiles/uhm_hlr.dir/compiler.cc.o" "gcc" "src/hlr/CMakeFiles/uhm_hlr.dir/compiler.cc.o.d"
  "/root/repo/src/hlr/interp.cc" "src/hlr/CMakeFiles/uhm_hlr.dir/interp.cc.o" "gcc" "src/hlr/CMakeFiles/uhm_hlr.dir/interp.cc.o.d"
  "/root/repo/src/hlr/lexer.cc" "src/hlr/CMakeFiles/uhm_hlr.dir/lexer.cc.o" "gcc" "src/hlr/CMakeFiles/uhm_hlr.dir/lexer.cc.o.d"
  "/root/repo/src/hlr/parser.cc" "src/hlr/CMakeFiles/uhm_hlr.dir/parser.cc.o" "gcc" "src/hlr/CMakeFiles/uhm_hlr.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dir/CMakeFiles/uhm_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uhm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
