file(REMOVE_RECURSE
  "libuhm_hlr.a"
)
