# Empty dependencies file for uhm_hlr.
# This may be replaced when dependencies are built.
