file(REMOVE_RECURSE
  "CMakeFiles/uhm_hlr.dir/compiler.cc.o"
  "CMakeFiles/uhm_hlr.dir/compiler.cc.o.d"
  "CMakeFiles/uhm_hlr.dir/interp.cc.o"
  "CMakeFiles/uhm_hlr.dir/interp.cc.o.d"
  "CMakeFiles/uhm_hlr.dir/lexer.cc.o"
  "CMakeFiles/uhm_hlr.dir/lexer.cc.o.d"
  "CMakeFiles/uhm_hlr.dir/parser.cc.o"
  "CMakeFiles/uhm_hlr.dir/parser.cc.o.d"
  "libuhm_hlr.a"
  "libuhm_hlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_hlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
