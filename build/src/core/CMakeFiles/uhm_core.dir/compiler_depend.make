# Empty compiler generated dependencies file for uhm_core.
# This may be replaced when dependencies are built.
