file(REMOVE_RECURSE
  "CMakeFiles/uhm_core.dir/dtb.cc.o"
  "CMakeFiles/uhm_core.dir/dtb.cc.o.d"
  "CMakeFiles/uhm_core.dir/trace_sim.cc.o"
  "CMakeFiles/uhm_core.dir/trace_sim.cc.o.d"
  "libuhm_core.a"
  "libuhm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uhm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
