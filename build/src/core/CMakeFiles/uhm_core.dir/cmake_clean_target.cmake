file(REMOVE_RECURSE
  "libuhm_core.a"
)
